"""Distributed SHP: the paper's 4-superstep protocol (Section 3.2, Figure 3).

One refinement iteration is four supersteps:

* **S1 collect** — every data vertex whose bucket changed sends a
  ``(old_bucket, new_bucket)`` delta to its adjacent query vertices (all
  vertices send their initial bucket in the first cycle).
* **S2 neighbor data** — query vertices fold deltas into their neighbor
  data ``n_i(q)`` and, if anything changed, send the (sparse) neighbor data
  to adjacent data vertices.  This is the paper's "heavy" superstep, bounded
  by ``fanout(q) · |N(q)|`` entries per query.
* **S3 propose** — data vertices recompute move gains from cached neighbor
  data, pick the best target bucket, and aggregate a
  ``(src, dst, gain-bin) → count`` histogram plus bucket sizes to the master.
* **S4 move** — the master matches histograms (the same
  :func:`repro.core.swaps.match_histogram_cells` logic as the in-process
  optimizer) and broadcasts per-bin move probabilities; each data vertex
  flips a coin and moves.

Two modes: ``"k"`` (direct k-way) and ``"2"`` (recursive bisection run
level-synchronously inside one job, the way the open-sourced Giraph SHP-2
operates; requires k to be a power of two).  The job *executes* the real
message protocol, so the engine's metering yields genuine per-superstep
message/byte/memory measurements for the scalability benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.config import SHPConfig
from ..core.histograms import GainBinning
from ..core.partition import balanced_random_assignment, validate_assignment
from ..core.swaps import match_histogram_cells
from ..distributed import ClusterSpec, GiraphEngine, JobMetrics
from ..hypergraph.bipartite import BipartiteGraph
from .schemas import DELTA_SCHEMA, NDATA_SCHEMA

__all__ = ["DistributedSHP", "DistributedSHPResult", "vertex_mode_names"]


def vertex_mode_names() -> list[str]:
    """Vertex execution modes accepted by :class:`DistributedSHP`."""
    return ["columnar", "dict"]

_PHASES = ("S1-collect", "S2-neighbor-data", "S3-propose", "S4-move")


def _scalar_gain_fns(objective_name: str, p: float, splits_ahead: float):
    """Scalar removal-gain / insertion-cost closures for the hot loop."""
    if objective_name == "cliquenet":
        return (lambda n: -(n - 1.0)), (lambda n: -float(n)), 0.0
    effective_p = 1.0 if objective_name == "fanout" else p
    q = 1.0 - effective_p / splits_ahead
    if q <= 0.0:
        return (
            (lambda n: 1.0 if n == 1 else 0.0),
            (lambda n: 1.0 if n == 0 else 0.0),
            1.0,
        )
    return (
        (lambda n: effective_p * q ** (n - 1)),
        (lambda n: effective_p * q**n),
        effective_p,
    )


class _SHPVertexProgram:
    """Vertex compute function for both query and data vertices.

    The program is graph-free until a backend calls :meth:`bind_graph` —
    under multiprocess execution each worker binds the shared (zero-copy)
    CSR arrays locally, so adjacency never travels through pickles.
    """

    def __init__(self, num_data: int, config: SHPConfig, binning: GainBinning, mode: str):
        self.num_data = num_data
        self.config = config
        self.binning = binning
        self.mode = mode
        # Worker-local alternation for level descent (Giraph's WorkerContext
        # permits exactly this kind of per-worker shared scratch): vertices
        # of the same bucket on the same worker alternate children, keeping
        # the split balanced to within ±(workers/2) instead of binomial drift.
        self._descent_parity: dict[tuple[int, int], int] = {}
        self._graph = None
        self._adj_cache: dict[int, np.ndarray] = {}

    def bind_graph(self, graph) -> None:
        """Attach the (read-only) bipartite graph; called by the backend."""
        self._graph = graph
        self._adj_cache = {}

    def __getstate__(self) -> dict:
        # Programs travel graph-free (the RPC backend pickles them to remote
        # workers, which bind their own graph copy); the adjacency cache is
        # derived data and would bloat every checkpoint.
        state = self.__dict__.copy()
        state["_graph"] = None
        state["_adj_cache"] = {}
        return state

    def _adjacency(self, vid: int) -> np.ndarray:
        """Engine-id neighbors of ``vid`` (queries offset by ``num_data``)."""
        adj = self._adj_cache.get(vid)
        if adj is None:
            if vid < self.num_data:
                adj = (self._graph.data_neighbors(vid) + self.num_data).astype(np.int64)
            else:
                adj = self._graph.query_neighbors(vid - self.num_data).astype(np.int64)
            self._adj_cache[vid] = adj
        return adj

    def phase_name(self, superstep: int) -> str:
        return _PHASES[superstep % 4]

    def message_schema(self, superstep: int):
        """Typed wire schema of this phase's messages (dtype-exact metering,
        shared with the columnar mode so both report identical byte meters)."""
        phase = superstep % 4
        if phase == 0:
            return DELTA_SCHEMA
        if phase == 1:
            return NDATA_SCHEMA
        return None

    # ------------------------------------------------------------------
    def compute(self, ctx, vid: int, state: dict, messages: list) -> None:
        phase = ctx.superstep % 4
        if state["kind"] == 0:
            self._compute_data(ctx, phase, state, messages)
        else:
            self._compute_query(ctx, phase, state, messages)

    # ------------------------------------------------------------------
    def _compute_data(self, ctx, phase: int, state: dict, messages: list) -> None:
        broadcasts = ctx.broadcasts
        if phase == 0:
            if broadcasts.get("advance"):
                # New bisection level: descend into a child bucket, chosen by
                # worker-local alternation so the split starts balanced.
                key = (ctx.worker_id, state["bucket"])
                child = self._descent_parity.get(key, ctx.superstep % 2)
                self._descent_parity[key] = 1 - child
                state["bucket"] = 2 * state["bucket"] + child
                state["delta"] = (None, state["bucket"])
                state["qdata"] = {}
            delta = state.pop("delta", None)
            if delta is not None:
                adj = self._adjacency(state["vid"])
                for q in adj:
                    ctx.send(int(q), ("d", delta[0], delta[1]))
                ctx.charge(len(adj))
        elif phase == 2:
            for payload in messages:
                state["qdata"][payload[1]] = (payload[2], payload[3])
            self._propose(ctx, state, broadcasts)
        elif phase == 3:
            probs = broadcasts.get("probs")
            target = state.get("target")
            if probs is None or target is None:
                return
            key = (state["bucket"], target, state.get("bin", 0))
            probability = probs.get(key, 0.0)
            if probability > 0.0 and ctx.random() < probability:
                old = state["bucket"]
                state["bucket"] = target
                state["delta"] = (old, target)
                ctx.aggregate("moved", "count", 1.0)

    def _propose(self, ctx, state: dict, broadcasts: dict) -> None:
        """Recompute gains from cached neighbor data; aggregate histogram."""
        cfg = self.config
        bucket = state["bucket"]
        qdata: dict = state["qdata"]
        splits = float(broadcasts.get("splits_ahead", 1.0))
        rem, ins, ins0 = _scalar_gain_fns(cfg.objective, cfg.p, splits)

        rsum = 0.0
        weight_sum = 0.0
        adjust: dict[int, float] = {}
        # Mode "2" runs on composite (group, side) level-fused labels —
        # bucket ``2·group + side`` — so the only reachable destination is
        # the sibling column ``bucket ^ 1``; accumulating just that term
        # keeps the adjust state at one scalar per vertex regardless of
        # how deep the level is (the whole level refines in one superstep
        # wave).  Same floats in the same order as the unrestricted fold.
        sibling = bucket ^ 1 if self.mode == "2" else None
        # Canonical ascending-query-id iteration: float accumulation order
        # is part of the wire contract with the columnar mode, whose
        # kernels sum in exactly this order (bitwise-identical gains).
        for qvid in sorted(qdata):
            weight, neighbor_data = qdata[qvid]
            weight_sum += weight
            count_here = neighbor_data.get(bucket, 1)
            rsum += weight * rem(count_here)
            if sibling is not None:
                count = neighbor_data.get(sibling)
                if count is not None:
                    adjust[sibling] = adjust.get(sibling, 0.0) + weight * (
                        ins(count) - ins0
                    )
            else:
                for other_bucket, count in sorted(neighbor_data.items()):
                    if other_bucket != bucket:
                        adjust[other_bucket] = adjust.get(other_bucket, 0.0) + weight * (
                            ins(count) - ins0
                        )
        ctx.charge(sum(len(nd) for _, nd in qdata.values()))  # reprolint: disable=REP002 -- integer edge counts: int sums are order-exact

        if sibling is not None:
            best_bucket = sibling
            best_adjust = adjust.get(sibling, 0.0)
        else:
            # Ascending-bucket iteration: ties on the minimum break toward
            # the lowest bucket id, matching the columnar argmin.
            best_bucket, best_adjust = None, 0.0
            for candidate in sorted(adjust):
                value = adjust[candidate]
                if candidate != bucket and value < best_adjust:
                    best_bucket, best_adjust = candidate, value
            if best_bucket is None:
                # No co-accessed bucket is better; fall back to any other
                # bucket (zero adjustment) — gains there are the base value.
                level_k = int(broadcasts.get("level_k", cfg.k))
                best_bucket = (bucket + 1) % level_k
                best_adjust = adjust.get(best_bucket, 0.0)

        gain = rsum - (weight_sum * ins0 + best_adjust)
        if cfg.move_penalty > 0.0:
            gain -= cfg.move_penalty
        state["target"] = int(best_bucket)
        state["gain"] = gain
        state["bin"] = int(self.binning.bin_of(np.array([gain]))[0])
        ctx.aggregate("hist", (bucket, int(best_bucket), state["bin"]), 1.0)
        ctx.aggregate("sizes", bucket, 1.0)

    # ------------------------------------------------------------------
    def _compute_query(self, ctx, phase: int, state: dict, messages: list) -> None:
        if phase != 1:
            return
        if ctx.broadcasts.get("reset"):
            state["nd"] = {}
        neighbor_data: dict = state["nd"]
        dirty = bool(messages) or ctx.broadcasts.get("reset", False)
        for payload in messages:
            if payload[0] == "dc":
                # Combined net adjustments (ShpDeltaCombiner): equivalent to
                # folding the raw deltas one by one, because the fold is a
                # per-bucket sum.  Zero entries is legal — the message still
                # marked this query dirty above.
                for bucket, net in payload[1]:
                    count = neighbor_data.get(bucket, 0) + net
                    if count <= 0:
                        neighbor_data.pop(bucket, None)
                    else:
                        neighbor_data[bucket] = count
                continue
            old, new = payload[1], payload[2]
            if old is not None:
                remaining = neighbor_data.get(old, 0) - 1
                if remaining <= 0:
                    neighbor_data.pop(old, None)
                else:
                    neighbor_data[old] = remaining
            neighbor_data[new] = neighbor_data.get(new, 0) + 1
        if dirty:
            vid_self = state["vid"]
            weight = state.get("weight", 1.0)
            adj = self._adjacency(vid_self)
            for data_vertex in adj:
                ctx.send(int(data_vertex), ("q", vid_self, weight, dict(neighbor_data)))
            ctx.charge(len(adj) * max(1, len(neighbor_data)))


class _SHPMaster:
    """Master program: matching, convergence, level advancement."""

    def __init__(
        self,
        num_data: int,
        config: SHPConfig,
        binning: GainBinning,
        mode: str,
        max_cycles: int,
    ):
        self.num_data = num_data
        self.config = config
        self.binning = binning
        self.mode = mode
        self.max_cycles = max_cycles
        self.level = 1
        self.final_levels = int(round(math.log2(config.k))) if mode == "2" else 1
        self.cycle_in_level = 0
        self.total_cycles = 0
        self.pending_reset = False
        self.pending_advance = False
        self.moved_history: list[int] = []

    # ------------------------------------------------------------------
    @property
    def level_k(self) -> int:
        """Bucket count at the current bisection level (k in mode 'k')."""
        return 2**self.level if self.mode == "2" else self.config.k

    def _caps(self) -> np.ndarray:
        cfg = self.config
        k_now = self.level_k
        if self.mode == "2" and cfg.epsilon_schedule:
            eps_eff = cfg.epsilon * min(1.0, k_now / cfg.k)
        else:
            eps_eff = cfg.epsilon
        target = self.num_data / k_now
        cap = max(np.floor((1.0 + eps_eff) * target), np.ceil(target))
        return np.full(k_now, int(cap), dtype=np.int64)

    # ------------------------------------------------------------------
    def compute(self, superstep: int, aggregates: dict) -> dict | None:
        phase = superstep % 4
        broadcasts: dict = {"level_k": self.level_k}
        if self.mode == "2":
            broadcasts["splits_ahead"] = (
                float(self.config.k / self.level_k) if self.config.use_final_pfanout else 1.0
            )

        if phase == 0:
            if self.pending_advance:
                broadcasts["advance"] = True
                self.pending_advance = False
                self.pending_reset = True
                self.level += 1
                self.cycle_in_level = 0
                broadcasts["level_k"] = self.level_k
                if self.mode == "2":
                    broadcasts["splits_ahead"] = (
                        float(self.config.k / self.level_k)
                        if self.config.use_final_pfanout
                        else 1.0
                    )
            elif self._should_stop(aggregates):
                return None
        elif phase == 1 and self.pending_reset:
            broadcasts["reset"] = True
            self.pending_reset = False
        elif phase == 3:
            broadcasts["probs"] = self._match(aggregates)
            self.cycle_in_level += 1
            self.total_cycles += 1
        return broadcasts

    # ------------------------------------------------------------------
    def _should_stop(self, aggregates: dict) -> bool:
        """Convergence / budget check at the start of each cycle."""
        moved = aggregates.get("moved", {}).get("count", None)
        if self.total_cycles == 0:
            return False
        if moved is not None:
            self.moved_history.append(int(moved))
        converged = (
            moved is not None
            and moved / max(1, self.num_data) < self.config.convergence_fraction
        )
        budget = (
            self.config.iterations_per_bisection
            if self.mode == "2"
            else self.config.max_iterations
        )
        exhausted = self.cycle_in_level >= budget
        if converged or exhausted:
            if self.mode == "2" and self.level < self.final_levels:
                self.pending_advance = True
                return False
            return True
        if moved is None and self.total_cycles > 0:
            # No movement aggregate at all means nothing moved last cycle.
            return True
        return False

    # ------------------------------------------------------------------
    def _match(self, aggregates: dict) -> dict:
        """Run the shared histogram matching on the aggregated proposals."""
        hist: dict = aggregates.get("hist", {})
        if not hist:
            return {}
        keys = list(hist.keys())
        src = np.array([key[0] for key in keys], dtype=np.int64)
        dst = np.array([key[1] for key in keys], dtype=np.int64)
        bins = np.array([key[2] for key in keys], dtype=np.int64)
        counts = np.array([hist[key] for key in keys], dtype=np.int64)
        if not self.config.allow_negative_gains:
            keep = bins > 0
            src, dst, bins, counts = src[keep], dst[keep], bins[keep], counts[keep]
            keys = [key for key, flag in zip(keys, keep.tolist()) if flag]
            if not keys:
                return {}
        k_now = self.level_k
        size_agg = aggregates.get("sizes", {})
        sizes = np.zeros(k_now, dtype=np.int64)
        for bucket, count in size_agg.items():
            sizes[int(bucket)] = int(count)
        allowed = match_histogram_cells(
            src, dst, bins, counts, k_now, sizes, self._caps(), self.binning
        )
        probability = self.config.move_damping * allowed / np.maximum(counts, 1)
        return {key: float(prob) for key, prob in zip(keys, probability) if prob > 0.0}


@dataclass
class DistributedSHPResult:
    """Assignment plus full execution metering."""

    assignment: np.ndarray
    k: int
    mode: str
    metrics: JobMetrics
    cycles: int
    supersteps: int
    halted_by_master: bool
    moved_history: list[int] = field(default_factory=list)
    backend: str = "sim"
    vertex_mode: str = "columnar"


class DistributedSHP:
    """Run SHP as a vertex-centric job on a Giraph-like cluster.

    ``backend`` selects the execution substrate: ``"sim"`` (in-process
    simulation, the default), ``"mp"`` (one OS process per worker),
    ``"rpc"`` (TCP workers, see :class:`repro.distributed.RpcBackend`), or
    any :class:`repro.distributed.Backend` instance.  ``vertex_mode``
    selects how workers execute vertices: ``"columnar"`` (default) runs
    each protocol phase as vectorized kernels over struct-of-arrays
    partitions exchanging typed message batches; ``"dict"`` is the
    per-vertex reference implementation.  ``combiner`` enables message
    combining: ``True`` (or ``"delta"``) uses the protocol's
    :class:`~repro.distributed_shp.combiners.ShpDeltaCombiner`; a
    :class:`~repro.distributed.Combiner` instance is used as-is.  Given
    the same config and graph, every (backend, vertex_mode, combiner)
    combination produces bit-identical assignments; meters are identical
    across backends and vertex modes for a fixed combiner setting.
    """

    def __init__(
        self,
        config: SHPConfig,
        cluster: ClusterSpec | None = None,
        mode: str = "2",
        backend=None,
        vertex_mode: str = "columnar",
        combiner=None,
    ):
        if mode not in ("2", "k"):
            raise ValueError("mode must be '2' or 'k'")
        if mode == "2" and (config.k & (config.k - 1)) != 0:
            raise ValueError("distributed SHP-2 requires k to be a power of two")
        if vertex_mode not in vertex_mode_names():
            raise ValueError(
                f"vertex_mode must be one of {vertex_mode_names()}, got {vertex_mode!r}"
            )
        if combiner in (True, "delta"):
            from .combiners import ShpDeltaCombiner

            combiner = ShpDeltaCombiner()
        elif combiner in (False, None):
            combiner = None
        self.config = config
        self.cluster = cluster or ClusterSpec()
        self.mode = mode
        self.backend = backend
        self.vertex_mode = vertex_mode
        self.combiner = combiner

    # ------------------------------------------------------------------
    def run(
        self, graph: BipartiteGraph, initial: np.ndarray | None = None
    ) -> DistributedSHPResult:
        """Execute the 4-superstep protocol; returns assignment + metering."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        num_data = graph.num_data
        start_k = 2 if self.mode == "2" else config.k
        if initial is None:
            assignment = balanced_random_assignment(num_data, start_k, rng)
        else:
            assignment = np.asarray(initial, dtype=np.int32).copy()
            try:
                validate_assignment(assignment, num_data, start_k)
            except ValueError as exc:
                hint = (
                    " (mode '2' runs recursive bisection level-synchronously: "
                    "it starts at 2 buckets and descends, so the initial "
                    "assignment must be a 2-way labeling, not k-way)"
                    if self.mode == "2"
                    else ""
                )
                raise ValueError(
                    f"invalid initial assignment for distributed SHP mode "
                    f"{self.mode!r} with start bucket count {start_k}{hint}: {exc}"
                ) from exc

        # States carry no adjacency: programs read the (shared, read-only)
        # graph through ``bind_graph``, so worker partitions stay small and
        # the CSR arrays are never pickled into worker processes.
        states: dict[int, dict] = {}
        for v in range(num_data):
            states[v] = {
                "kind": 0,
                "vid": v,
                "bucket": int(assignment[v]),
                "qdata": {},
                "delta": (None, int(assignment[v])),
            }
        query_weights = (
            graph.query_weights_or_unit() if graph.query_weights is not None else None
        )
        for q in range(graph.num_queries):
            states[num_data + q] = {
                "kind": 1,
                "vid": num_data + q,
                "nd": {},
                "weight": 1.0 if query_weights is None else float(query_weights[q]),
            }

        binning = GainBinning(num_bins=config.num_bins, min_gain=config.min_gain)
        if self.vertex_mode == "columnar":
            from .columnar import SHPColumnarProgram

            program = SHPColumnarProgram(num_data, config, binning, self.mode)
        else:
            program = _SHPVertexProgram(num_data, config, binning, self.mode)
        levels = int(round(math.log2(config.k))) if self.mode == "2" else 1
        budget = (
            config.iterations_per_bisection if self.mode == "2" else config.max_iterations
        )
        max_supersteps = 4 * (budget + 2) * levels + 8
        master = _SHPMaster(num_data, config, binning, self.mode, budget)

        engine = GiraphEngine(cluster=self.cluster, seed=config.seed, backend=self.backend)
        engine.load(states, graph=graph)
        job = engine.run(
            program, master=master, max_supersteps=max_supersteps, combiner=self.combiner
        )

        final = np.empty(num_data, dtype=np.int32)
        for v in range(num_data):
            final[v] = job.states[v]["bucket"]
        return DistributedSHPResult(
            assignment=final,
            k=config.k,
            mode=self.mode,
            metrics=job.metrics,
            cycles=master.total_cycles,
            supersteps=job.supersteps_run,
            halted_by_master=job.halted_by_master,
            moved_history=master.moved_history,
            backend=engine.backend.name,
            vertex_mode=self.vertex_mode,
        )
