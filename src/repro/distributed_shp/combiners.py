"""Message combiners for the 4-superstep SHP protocol.

:class:`ShpDeltaCombiner` implements the Giraph-style combiner the paper
lists among its messaging optimizations, specialized to the S1 collect
phase: all ``(old, new)`` bucket deltas one worker sends to the same query
vertex collapse into a single *net* per-bucket adjustment message
(:data:`~repro.distributed_shp.schemas.NET_DELTA_SCHEMA`).

Correctness rests on the fold being a sum: a query's neighbor data
``n_i(q)`` changes by ``+1`` on the new bucket and ``-1`` on the old bucket
of every mover, so the order of arrival never matters and the per-bucket
*net* carries exactly the same information as the raw delta stream.  A
worker whose movers cancel out entirely still sends one zero-entry
(0-byte) message, because receiving *something* is what marks the query
dirty — with the combiner on or off, for any seed, on every backend, the
final assignment is bitwise identical (the parity grid in
``tests/test_vertex_mode_parity.py`` pins this).

Wire win: a raw delta costs 8 bytes, a net entry costs 8 bytes, so
combining is applied per destination only when it yields strictly fewer
entries than raw messages (``E < m``) — combined traffic is never larger,
and shrinks dramatically when many movers share few buckets (mode "2" has
at most 2 live buckets per level).
"""

from __future__ import annotations

import numpy as np

from ..distributed.messages import Combiner, MessageBatch, MessageSchema
from .schemas import DELTA_SCHEMA, NET_DELTA_SCHEMA

__all__ = ["ShpDeltaCombiner"]


class ShpDeltaCombiner(Combiner):
    """Collapse S1 bucket deltas into per-bucket net adjustments.

    Dict path: :meth:`combine` folds one destination's raw ``("d", old,
    new)`` payloads into a single ``("dc", ((bucket, net), ...))`` payload
    (buckets ascending, zero nets dropped) whenever that is strictly
    smaller.  Columnar path: :meth:`combine_batch` performs the same
    reduction over whole :class:`~repro.distributed.MessageBatch` columns
    with a lexsort/reduceat segment sum.  Non-delta traffic (the S2
    neighbor-data broadcasts) passes through untouched.
    """

    # ------------------------------------------------------------------
    # Dict path
    # ------------------------------------------------------------------
    def combine(self, payloads: list) -> list:
        if not payloads or payloads[0][0] != "d":
            return payloads
        net: dict[int, int] = {}
        for _, old, new in payloads:
            if old is not None:
                net[old] = net.get(old, 0) - 1
            net[new] = net.get(new, 0) + 1
        entries = tuple(
            (int(b), int(c)) for b, c in sorted(net.items()) if c != 0
        )
        if len(entries) >= len(payloads):
            return payloads  # combining would not shrink the wire
        return [("dc", entries)]

    def measure(self, payload: object, schema: MessageSchema | None) -> int:
        if isinstance(payload, tuple) and payload and payload[0] == "dc":
            return NET_DELTA_SCHEMA.measure(payload)
        return super().measure(payload, schema)

    # ------------------------------------------------------------------
    # Columnar path
    # ------------------------------------------------------------------
    def combine_batch(self, batch: MessageBatch) -> list[MessageBatch]:
        if batch.schema.name != DELTA_SCHEMA.name or len(batch) <= 1:
            return [batch]
        n = len(batch)
        dst = batch.dst
        old = batch.cols["old"].astype(np.int64)
        new = batch.cols["new"].astype(np.int64)

        uniq_dst, dst_inv, m_per = np.unique(
            dst, return_inverse=True, return_counts=True
        )
        # Net per (destination, bucket): +1 on each mover's new bucket,
        # -1 on its old one (old < 0 encodes "first announcement").
        dec = old >= 0
        rows = np.concatenate([dst_inv, dst_inv[dec]])
        buckets = np.concatenate([new, old[dec]])
        signs = np.concatenate(
            [
                np.ones(n, dtype=np.int64),
                np.full(int(dec.sum()), -1, dtype=np.int64),
            ]
        )
        order = np.lexsort((buckets, rows))
        rq, rb, rs = rows[order], buckets[order], signs[order]
        first = np.empty(rq.size, dtype=bool)
        first[0] = True
        first[1:] = (rq[1:] != rq[:-1]) | (rb[1:] != rb[:-1])
        starts = np.flatnonzero(first)
        sums = np.add.reduceat(rs, starts)
        keep = sums != 0
        gq, gb, gn = rq[starts][keep], rb[starts][keep], sums[keep]

        # Combine a destination only when strictly fewer net entries than
        # raw messages — the same E < m rule the dict path applies.
        entries_per = np.bincount(gq, minlength=uniq_dst.size)
        do_combine = entries_per < m_per

        out: list[MessageBatch] = []
        raw_mask = ~do_combine[dst_inv]
        if raw_mask.any():
            out.append(batch.select(np.flatnonzero(raw_mask)))
        cdst = np.flatnonzero(do_combine)
        if cdst.size:
            in_combined = do_combine[gq]
            eq = gq[in_combined]
            lens = np.bincount(eq, minlength=uniq_dst.size)[cdst]
            out.append(
                MessageBatch(
                    NET_DELTA_SCHEMA,
                    uniq_dst[cdst],
                    {},
                    entry_start=np.concatenate(([0], np.cumsum(lens)[:-1])),
                    entry_len=lens,
                    # Already grouped ascending (dst, bucket) by the
                    # lexsort — matching the dict path's sorted() order.
                    entries={
                        "bucket": gb[in_combined].astype(np.int32),
                        "net": gn[in_combined].astype(np.int32),
                    },
                )
            )
        return out if out else [batch.select(np.empty(0, dtype=np.int64))]
