"""Storage-sharding simulator (Section 4.2.1, Figure 4)."""

from .latency import LatencyModel, percentile_curve
from .simulator import QuerySample, ReplayResult, latency_by_fanout, replay_traffic
from .store import ShardedKVStore

__all__ = [
    "LatencyModel",
    "percentile_curve",
    "ShardedKVStore",
    "QuerySample",
    "ReplayResult",
    "replay_traffic",
    "latency_by_fanout",
]
