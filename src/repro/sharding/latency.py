"""Per-request latency model for the storage-sharding experiments (§4.2.1).

A multi-get query fans out to several servers in parallel; its latency is
the *maximum* of the per-request latencies, so heavier fanout samples deeper
into the per-request tail — the paper's fundamental argument for fanout
minimization ("the tail at scale" [12]).

Per-request latency is drawn from a lognormal (the standard heavy-tailed
service-time model) normalized to mean ``base_ms`` = the paper's unit ``t``,
plus a linear request-size term: Section 5 observes that the size of a
request to a server also matters (a 99/1 record split answers slower than
50/50), which this term reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyModel", "percentile_curve"]


@dataclass(frozen=True)
class LatencyModel:
    """Heavy-tailed per-request latency with a request-size component."""

    base_ms: float = 1.0  # mean latency of a single trivial request ("t")
    sigma: float = 0.8  # lognormal shape: higher = heavier tail
    size_ms_per_record: float = 0.0  # marginal cost per record requested

    def draw(
        self, rng: np.random.Generator, records_per_request: np.ndarray
    ) -> np.ndarray:
        """Latency of one request per entry of ``records_per_request``."""
        records = np.asarray(records_per_request, dtype=np.float64)
        mu = -0.5 * self.sigma**2  # normalize lognormal mean to 1
        tail = rng.lognormal(mean=mu, sigma=self.sigma, size=records.shape)
        return self.base_ms * tail + self.size_ms_per_record * records

    def multiget(
        self, rng: np.random.Generator, records_per_server: np.ndarray
    ) -> float:
        """Latency of one multi-get: the slowest of its parallel requests."""
        if records_per_server.size == 0:
            return 0.0
        return float(self.draw(rng, records_per_server).max())

    def multiget_batch(
        self,
        rng: np.random.Generator,
        records_per_request: np.ndarray,
        request_starts: np.ndarray,
    ) -> np.ndarray:
        """Latencies of many multi-gets from one vectorized lognormal pass.

        ``records_per_request`` concatenates every query's per-server record
        counts; ``request_starts[i]`` is the offset of query ``i``'s first
        request (segments contiguous and non-empty).  Returns one latency
        per query — the max over its parallel per-request draws — matching
        :meth:`multiget` in distribution while drawing all requests at once.
        """
        if request_starts.size == 0:
            return np.zeros(0, dtype=np.float64)
        draws = self.draw(rng, records_per_request)
        return np.maximum.reduceat(draws, request_starts)

    def fanout_latency_matrix(
        self, rng: np.random.Generator, fanout: int, trials: int
    ) -> np.ndarray:
        """``trials`` multi-get latencies at a fixed fanout of trivial requests."""
        draws = self.draw(rng, np.ones((trials, max(1, fanout))))
        return draws.max(axis=1)


def percentile_curve(
    model: LatencyModel,
    fanouts: np.ndarray,
    percentiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
    trials: int = 4000,
    seed: int = 0,
) -> dict[float, np.ndarray]:
    """Latency percentiles (in units of t) as a function of fanout (Fig. 4a)."""
    rng = np.random.default_rng(seed)
    out = {p: np.empty(len(fanouts)) for p in percentiles}
    for idx, fanout in enumerate(np.asarray(fanouts, dtype=np.int64)):
        samples = model.fanout_latency_matrix(rng, int(fanout), trials)
        for p in percentiles:
            out[p][idx] = np.percentile(samples, p) / model.base_ms
    return out
