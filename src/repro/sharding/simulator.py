"""Traffic replay over a sharded store: fanout and latency per query.

Reproduces the paper's realistic experiment (Fig. 4b): shard a friendship
graph's records over servers with some partitioner, replay a sampled
traffic pattern of multi-get queries, and record each query's fanout and
latency.  Aggregations by fanout produce the percentile-vs-fanout curves;
summary statistics give the random-vs-SHP sharding comparison ("2x lower
average latency", §4.2.1).

Two execution paths share one contract:

* ``method="batch"`` (default) — the vectorized planner: gather every
  sampled query's neighbor list into one flat (query, server) array, group
  it with a single sort + segmented reduction
  (:meth:`ShardedKVStore.plan_multiget_batch`), and draw all per-request
  latencies in one lognormal pass (:meth:`LatencyModel.multiget_batch`).
* ``method="loop"`` — the reference implementation, one query at a time.

Both produce bitwise-identical fanout / request / record counters (pinned
by ``tests/test_serving.py``); only the latency *draws* differ (same
distribution, different RNG consumption order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hypergraph.bipartite import BipartiteGraph
from .latency import LatencyModel
from .store import ShardedKVStore

__all__ = ["QuerySample", "ReplayResult", "replay_traffic", "latency_by_fanout"]


@dataclass(frozen=True)
class QuerySample:
    """One multi-get observation (row view into a :class:`ReplayResult`)."""

    fanout: int
    latency_ms: float
    num_records: int


class ReplayResult:
    """All samples from one traffic replay plus store-side load counters.

    Struct-of-arrays: ``fanouts`` / ``latencies`` / ``records`` are parallel
    arrays with one entry per replayed (non-empty) query, in trace order.
    The ``samples`` property materializes the legacy row-oriented view.
    """

    def __init__(
        self,
        fanouts: np.ndarray | None = None,
        latencies: np.ndarray | None = None,
        records: np.ndarray | None = None,
        requests_total: int = 0,
        records_total: int = 0,
    ):
        self.fanouts = (
            np.asarray(fanouts, dtype=np.int64)
            if fanouts is not None
            else np.empty(0, dtype=np.int64)
        )
        self.latencies = (
            np.asarray(latencies, dtype=np.float64)
            if latencies is not None
            else np.empty(0, dtype=np.float64)
        )
        self.records = (
            np.asarray(records, dtype=np.int64)
            if records is not None
            else np.empty(0, dtype=np.int64)
        )
        self.requests_total = requests_total
        self.records_total = records_total

    @property
    def num_samples(self) -> int:
        return int(self.fanouts.size)

    @property
    def samples(self) -> tuple[QuerySample, ...]:
        # A tuple, not a list: the arrays are the source of truth, so
        # mutating this materialized view (e.g. .append) must fail loudly.
        return tuple(
            QuerySample(fanout=int(f), latency_ms=float(lat), num_records=int(r))
            for f, lat, r in zip(self.fanouts, self.latencies, self.records)
        )

    @samples.setter
    def samples(self, values: list[QuerySample]) -> None:
        self.fanouts = np.array([s.fanout for s in values], dtype=np.int64)
        self.latencies = np.array([s.latency_ms for s in values], dtype=np.float64)
        self.records = np.array([s.num_records for s in values], dtype=np.int64)

    def mean_fanout(self) -> float:
        return float(self.fanouts.mean()) if self.fanouts.size else 0.0

    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    def latency_percentile(self, p: float) -> float:
        return float(np.percentile(self.latencies, p)) if self.latencies.size else 0.0

    def cpu_proxy(self, ms_per_request: float = 0.05, ms_per_record: float = 0.002) -> float:
        """Storage-tier CPU model: fixed cost per request + per record.

        Lower fanout means fewer requests for the same records, which is
        the mechanism behind the paper's observed CPU reduction.
        """
        return ms_per_request * self.requests_total + ms_per_record * self.records_total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplayResult(n={self.num_samples}, requests={self.requests_total}, "
            f"records={self.records_total})"
        )


def replay_traffic(
    graph: BipartiteGraph,
    assignment: np.ndarray,
    num_servers: int,
    query_ids: np.ndarray,
    latency_model: LatencyModel | None = None,
    seed: int = 0,
    method: str = "batch",
) -> ReplayResult:
    """Replay ``query_ids`` as multi-gets against the sharded store.

    ``method="batch"`` runs the vectorized planner (default);
    ``method="loop"`` runs the per-query reference path.  Counters and
    per-sample fanout/record arrays are identical between the two.
    """
    model = latency_model or LatencyModel()
    rng = np.random.default_rng(seed)
    store = ShardedKVStore(num_servers=num_servers, assignment=assignment)
    queries = np.asarray(query_ids, dtype=np.int64)
    if method == "batch":
        return _replay_batch(graph, store, queries, model, rng)
    if method == "loop":
        return _replay_loop(graph, store, queries, model, rng)
    raise ValueError("method must be 'batch' or 'loop'")


def _replay_batch(
    graph: BipartiteGraph,
    store: ShardedKVStore,
    query_ids: np.ndarray,
    model: LatencyModel,
    rng: np.random.Generator,
) -> ReplayResult:
    """One flat gather + one sort + one lognormal pass for the whole trace."""
    degrees = graph.q_indptr[query_ids + 1] - graph.q_indptr[query_ids]
    keep = degrees > 0  # empty queries produce no requests (loop path skips them)
    queries = query_ids[keep]
    degrees = degrees[keep].astype(np.int64)
    num_queries = int(queries.size)
    if num_queries == 0:
        return ReplayResult()
    # Flat gather: entry t of the batch is neighbor (t - offsets[slot]) of
    # its query slot, located at q_indptr[query] + that local index.
    offsets = np.concatenate(([0], np.cumsum(degrees)))
    flat = (
        np.arange(offsets[-1], dtype=np.int64)
        - np.repeat(offsets[:-1], degrees)
        + np.repeat(graph.q_indptr[queries], degrees)
    )
    keys = graph.q_indices[flat]
    slot_of_key = np.repeat(np.arange(num_queries, dtype=np.int64), degrees)
    req_query, _, req_records = store.plan_multiget_batch(keys, slot_of_key)
    # Requests arrive grouped by slot; segment boundaries give per-query fanout.
    first = np.ones(req_query.size, dtype=bool)
    first[1:] = req_query[1:] != req_query[:-1]
    request_starts = np.flatnonzero(first)
    fanouts = np.diff(np.concatenate((request_starts, [req_query.size])))
    latencies = model.multiget_batch(rng, req_records, request_starts)
    return ReplayResult(
        fanouts=fanouts,
        latencies=latencies,
        records=degrees,
        requests_total=int(store.requests_per_server.sum()),
        records_total=int(store.records_per_server.sum()),
    )


def _replay_loop(
    graph: BipartiteGraph,
    store: ShardedKVStore,
    query_ids: np.ndarray,
    model: LatencyModel,
    rng: np.random.Generator,
) -> ReplayResult:
    """Reference path: one query at a time (kept for parity testing)."""
    fanouts: list[int] = []
    latencies: list[float] = []
    records: list[int] = []
    for q in query_ids.tolist():
        keys = graph.query_neighbors(q)
        if keys.size == 0:
            continue
        _, counts = store.plan_multiget(keys)
        fanouts.append(int(counts.size))
        latencies.append(model.multiget(rng, counts))
        records.append(int(keys.size))
    return ReplayResult(
        fanouts=np.array(fanouts, dtype=np.int64),
        latencies=np.array(latencies, dtype=np.float64),
        records=np.array(records, dtype=np.int64),
        requests_total=int(store.requests_per_server.sum()),
        records_total=int(store.records_per_server.sum()),
    )


def latency_by_fanout(
    result: ReplayResult,
    percentiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
    max_fanout: int | None = None,
    min_samples: int = 20,
) -> dict[int, dict[float, float]]:
    """Percentile latency per observed fanout value (the Fig. 4b curves).

    Fanouts with fewer than ``min_samples`` observations are dropped, as
    the paper drops fanout > 35 ("there are very few such queries").
    """
    fanouts = result.fanouts
    latencies = result.latencies
    out: dict[int, dict[float, float]] = {}
    for fanout in np.unique(fanouts).tolist():
        if max_fanout is not None and fanout > max_fanout:
            continue
        mask = fanouts == fanout
        if int(mask.sum()) < min_samples:
            continue
        out[int(fanout)] = {
            p: float(np.percentile(latencies[mask], p)) for p in percentiles
        }
    return out
