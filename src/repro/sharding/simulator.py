"""Traffic replay over a sharded store: fanout and latency per query.

Reproduces the paper's realistic experiment (Fig. 4b): shard a friendship
graph's records over servers with some partitioner, replay a sampled
traffic pattern of multi-get queries, and record each query's fanout and
latency.  Aggregations by fanout produce the percentile-vs-fanout curves;
summary statistics give the random-vs-SHP sharding comparison ("2x lower
average latency", §4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hypergraph.bipartite import BipartiteGraph
from .latency import LatencyModel
from .store import ShardedKVStore

__all__ = ["QuerySample", "ReplayResult", "replay_traffic", "latency_by_fanout"]


@dataclass(frozen=True)
class QuerySample:
    """One multi-get observation."""

    fanout: int
    latency_ms: float
    num_records: int


@dataclass
class ReplayResult:
    """All samples from one traffic replay plus store-side load counters."""

    samples: list[QuerySample] = field(default_factory=list)
    requests_total: int = 0
    records_total: int = 0

    @property
    def fanouts(self) -> np.ndarray:
        return np.array([s.fanout for s in self.samples], dtype=np.int64)

    @property
    def latencies(self) -> np.ndarray:
        return np.array([s.latency_ms for s in self.samples], dtype=np.float64)

    def mean_fanout(self) -> float:
        return float(self.fanouts.mean()) if self.samples else 0.0

    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.samples else 0.0

    def latency_percentile(self, p: float) -> float:
        return float(np.percentile(self.latencies, p)) if self.samples else 0.0

    def cpu_proxy(self, ms_per_request: float = 0.05, ms_per_record: float = 0.002) -> float:
        """Storage-tier CPU model: fixed cost per request + per record.

        Lower fanout means fewer requests for the same records, which is
        the mechanism behind the paper's observed CPU reduction.
        """
        return ms_per_request * self.requests_total + ms_per_record * self.records_total


def replay_traffic(
    graph: BipartiteGraph,
    assignment: np.ndarray,
    num_servers: int,
    query_ids: np.ndarray,
    latency_model: LatencyModel | None = None,
    seed: int = 0,
) -> ReplayResult:
    """Replay ``query_ids`` as multi-gets against the sharded store."""
    model = latency_model or LatencyModel()
    rng = np.random.default_rng(seed)
    store = ShardedKVStore(num_servers=num_servers, assignment=assignment)
    result = ReplayResult()
    for q in np.asarray(query_ids, dtype=np.int64).tolist():
        keys = graph.query_neighbors(q)
        if keys.size == 0:
            continue
        _, counts = store.plan_multiget(keys)
        latency = model.multiget(rng, counts)
        result.samples.append(
            QuerySample(fanout=int(counts.size), latency_ms=latency, num_records=int(keys.size))
        )
    result.requests_total = int(store.requests_per_server.sum())
    result.records_total = int(store.records_per_server.sum())
    return result


def latency_by_fanout(
    result: ReplayResult,
    percentiles: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0),
    max_fanout: int | None = None,
    min_samples: int = 20,
) -> dict[int, dict[float, float]]:
    """Percentile latency per observed fanout value (the Fig. 4b curves).

    Fanouts with fewer than ``min_samples`` observations are dropped, as
    the paper drops fanout > 35 ("there are very few such queries").
    """
    fanouts = result.fanouts
    latencies = result.latencies
    out: dict[int, dict[float, float]] = {}
    for fanout in np.unique(fanouts).tolist():
        if max_fanout is not None and fanout > max_fanout:
            continue
        mask = fanouts == fanout
        if int(mask.sum()) < min_samples:
            continue
        out[int(fanout)] = {
            p: float(np.percentile(latencies[mask], p)) for p in percentiles
        }
    return out
