"""Sharded in-memory key-value store (the Fig. 4b substrate).

Models the paper's experiment: "the data is stored in a memory-based,
key-value store, and there is one data record per user", sharded over a
set of servers by a partition assignment.  The store tracks per-server
request/record counters so experiments can report load and the CPU-proxy
metrics behind the paper's "CPU utilization also decreased by over 50%"
observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShardedKVStore"]


@dataclass
class ShardedKVStore:
    """Records distributed over ``num_servers`` by an assignment array."""

    num_servers: int
    assignment: np.ndarray  # record id -> server id
    requests_per_server: np.ndarray = field(init=False)
    records_per_server: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.size:
            if self.assignment.min() < 0:
                # Negative ids would pass a max()-only check and silently
                # corrupt the load counters via negative indexing.
                raise ValueError("assignment contains negative server ids")
            if self.assignment.max() >= self.num_servers:
                raise ValueError("assignment references a server beyond num_servers")
        self.requests_per_server = np.zeros(self.num_servers, dtype=np.int64)
        self.records_per_server = np.zeros(self.num_servers, dtype=np.int64)

    @property
    def num_records(self) -> int:
        return int(self.assignment.size)

    def server_of(self, keys: np.ndarray) -> np.ndarray:
        return self.assignment[np.asarray(keys, dtype=np.int64)]

    def plan_multiget(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Group a multi-get: returns (servers_hit, records_per_server).

        Also advances the per-server load counters (one request per server
        hit, plus the record counts), modeling the storage tier's work.
        """
        servers = self.server_of(keys)
        hit, counts = np.unique(servers, return_counts=True)
        self.requests_per_server[hit] += 1
        self.records_per_server[hit] += counts
        return hit, counts

    def plan_multiget_batch(
        self, keys: np.ndarray, query_of_key: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group a whole batch of multi-gets in one vectorized pass.

        ``keys`` concatenates every query's key list; ``query_of_key`` maps
        each entry to its query slot.  One sort + segmented reduction yields
        the per-(slot, server) requests: returns ``(req_query, req_server,
        req_records)`` arrays, one entry per request, grouped by query slot
        with servers ascending inside a slot.  Advances the per-server load
        counters exactly as the equivalent :meth:`plan_multiget` loop would.
        """
        servers = self.server_of(keys)
        query_of_key = np.asarray(query_of_key, dtype=np.int64)
        # Fuse (slot, server) into one sortable key: a value sort beats a
        # two-key lexsort and no permutation array is ever materialized.
        key = np.sort(query_of_key * self.num_servers + servers)
        first = np.ones(key.size, dtype=bool)
        first[1:] = key[1:] != key[:-1]
        req_start = np.flatnonzero(first)
        req_key = key[req_start]
        req_query = req_key // self.num_servers
        req_server = req_key % self.num_servers
        req_records = np.diff(np.concatenate((req_start, [key.size])))
        self.requests_per_server += np.bincount(req_server, minlength=self.num_servers)
        self.records_per_server += np.bincount(
            req_server, weights=req_records, minlength=self.num_servers
        ).astype(np.int64)
        return req_query, req_server, req_records

    def load_imbalance(self) -> float:
        """Max/mean ratio of records stored per server (placement skew)."""
        stored = np.bincount(self.assignment, minlength=self.num_servers)
        mean = stored.mean()
        return float(stored.max() / mean) if mean > 0 else 0.0

    def reset_counters(self) -> None:
        self.requests_per_server[:] = 0
        self.records_per_server[:] = 0
