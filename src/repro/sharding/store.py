"""Sharded in-memory key-value store (the Fig. 4b substrate).

Models the paper's experiment: "the data is stored in a memory-based,
key-value store, and there is one data record per user", sharded over a
set of servers by a partition assignment.  The store tracks per-server
request/record counters so experiments can report load and the CPU-proxy
metrics behind the paper's "CPU utilization also decreased by over 50%"
observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShardedKVStore"]


@dataclass
class ShardedKVStore:
    """Records distributed over ``num_servers`` by an assignment array."""

    num_servers: int
    assignment: np.ndarray  # record id -> server id
    requests_per_server: np.ndarray = field(init=False)
    records_per_server: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.size and self.assignment.max() >= self.num_servers:
            raise ValueError("assignment references a server beyond num_servers")
        self.requests_per_server = np.zeros(self.num_servers, dtype=np.int64)
        self.records_per_server = np.zeros(self.num_servers, dtype=np.int64)

    @property
    def num_records(self) -> int:
        return int(self.assignment.size)

    def server_of(self, keys: np.ndarray) -> np.ndarray:
        return self.assignment[np.asarray(keys, dtype=np.int64)]

    def plan_multiget(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Group a multi-get: returns (servers_hit, records_per_server).

        Also advances the per-server load counters (one request per server
        hit, plus the record counts), modeling the storage tier's work.
        """
        servers = self.server_of(keys)
        hit, counts = np.unique(servers, return_counts=True)
        self.requests_per_server[hit] += 1
        self.records_per_server[hit] += counts
        return hit, counts

    def load_imbalance(self) -> float:
        """Max/mean ratio of records stored per server (placement skew)."""
        stored = np.bincount(self.assignment, minlength=self.num_servers)
        mean = stored.mean()
        return float(stored.max() / mean) if mean > 0 else 0.0

    def reset_counters(self) -> None:
        self.requests_per_server[:] = 0
        self.records_per_server[:] = 0
