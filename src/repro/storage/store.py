"""Zero-copy mmap views over ``.rgs`` graph stores.

:class:`GraphStore` opens one store file, validates its header against the
v1 schema, and exposes each section as a read-only :class:`numpy.memmap`.
``store.view()`` wraps those maps in a :class:`StoreBackedGraph` — a
:class:`~repro.hypergraph.bipartite.BipartiteGraph` subclass, so every
partitioner, objective, and engine consumes it unchanged — without copying
a byte: the OS pages CSR data in on demand and shares the pages across
every process that maps the same file.

That sharing is the distributed win.  A ``StoreBackedGraph`` pickles as
its *path* (plus the tiny weight columns' presence flags), so the mp
backend's spawn pickle and the RPC init handshake ship bytes, not arrays;
each worker re-maps the file locally and :meth:`GraphStore.data_range` /
:meth:`GraphStore.data_slice` let it touch only its own vertex range.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..hypergraph.bipartite import BipartiteGraph
from .format import (
    SectionInfo,
    StoreFormatError,
    StoreHeader,
    StoreWriter,
    read_header,
)

__all__ = [
    "GraphStore",
    "StoreBackedGraph",
    "open_store_view",
    "write_store",
]


class StoreBackedGraph(BipartiteGraph):
    """A :class:`BipartiteGraph` whose arrays are mmap views into a store.

    Behaviorally identical to an in-memory graph (the arrays are read-only
    memmaps, honoring the immutable-by-convention contract), with one
    extra property: pickling ships the store *path*, and unpickling
    re-opens the store on the receiving side.  Master-to-worker graph
    transfer therefore costs a few hundred bytes regardless of graph
    size, and co-located workers share page-cache pages instead of
    holding private copies.
    """

    def __init__(self, store: "GraphStore", **kwargs: object):
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.store = store

    @property
    def store_path(self) -> Path:
        return self.store.path

    def __reduce__(self):
        return (open_store_view, (str(self.store.path),))


def open_store_view(path: str | Path) -> StoreBackedGraph:
    """Open ``path`` and return its graph view (the unpickle constructor)."""
    return GraphStore.open(path).view()


class GraphStore:
    """One open ``.rgs`` file: validated header + per-section memmaps."""

    def __init__(self, path: Path, header: StoreHeader):
        self.path = path
        self.header = header
        self._maps: dict[str, np.ndarray] = {}

    @classmethod
    def open(cls, path: str | Path) -> "GraphStore":
        """Open and validate a store.

        Raises :class:`~repro.storage.format.StoreFormatError` for files
        that are not RGS (bad magic), newer-versioned, or internally
        inconsistent, and :class:`~repro.storage.format.TruncatedStoreError`
        when the file ends before a catalogued section does.
        """
        path = Path(path)
        header = read_header(path)
        store = cls(path, header)
        for required in ("q_indptr", "q_indices", "d_indptr", "d_indices"):
            if header.section(required) is None:
                raise StoreFormatError(
                    f"{path}: store is missing required section {required!r}"
                )
        return store

    # ------------------------------------------------------------------
    def _map(self, info: SectionInfo) -> np.ndarray:
        """Memory-map one section (cached; read-only)."""
        if info.name not in self._maps:
            if info.nbytes == 0:
                self._maps[info.name] = np.empty(info.shape, dtype=np.dtype(info.dtype))
                return self._maps[info.name]
            self._maps[info.name] = np.memmap(
                self.path,
                dtype=np.dtype(info.dtype),
                mode="r",
                offset=info.offset,
                shape=info.shape,
            )
        return self._maps[info.name]

    def section(self, name: str) -> np.ndarray | None:
        """The named section as a read-only array, or ``None`` if absent."""
        info = self.header.section(name)
        return self._map(info) if info is not None else None

    def view(self) -> StoreBackedGraph:
        """The whole graph as a zero-copy :class:`StoreBackedGraph`."""
        return StoreBackedGraph(
            self,
            num_queries=self.header.num_queries,
            num_data=self.header.num_data,
            q_indptr=self.section("q_indptr"),
            q_indices=self.section("q_indices"),
            d_indptr=self.section("d_indptr"),
            d_indices=self.section("d_indices"),
            data_weights=self.section("data_weights"),
            query_weights=self.section("query_weights"),
            name=self.header.name,
        )

    # ------------------------------------------------------------------
    # Partition-slice readers
    # ------------------------------------------------------------------
    def data_range(self, worker: int, num_workers: int) -> tuple[int, int]:
        """The contiguous data-vertex range ``[lo, hi)`` owned by ``worker``.

        Edge-balanced, not vertex-balanced: boundaries are placed so each
        worker's share of d-side CSR slots is as even as contiguity
        allows (``searchsorted`` on ``d_indptr``), matching how the
        engines cost supersteps by adjacency touched rather than by
        vertex count.  Deterministic: every caller computes the same
        boundaries from the same store.
        """
        if not 0 <= worker < num_workers:
            raise ValueError(f"worker {worker} out of range for {num_workers} workers")
        d_indptr = self.section("d_indptr")
        total = int(d_indptr[-1])
        lo_target = total * worker // num_workers
        hi_target = total * (worker + 1) // num_workers
        lo = int(np.searchsorted(d_indptr, lo_target, side="left"))
        hi = int(np.searchsorted(d_indptr, hi_target, side="left"))
        return min(lo, self.header.num_data), min(hi, self.header.num_data)

    def data_slice(self, lo: int, hi: int) -> dict[str, np.ndarray]:
        """Zero-copy d-side CSR rows ``[lo, hi)`` — a worker's shard.

        Returns ``indptr`` rebased to the slice (``indptr[0] == 0``),
        ``indices`` (the adjacent query ids), and the slice's
        ``data_weights`` rows when the store has them.  Only the pages
        backing these rows are faulted in; the rest of the file is never
        touched.
        """
        if not 0 <= lo <= hi <= self.header.num_data:
            raise ValueError(
                f"data slice [{lo}, {hi}) out of range for "
                f"{self.header.num_data} data vertices"
            )
        d_indptr = self.section("d_indptr")
        start, stop = int(d_indptr[lo]), int(d_indptr[hi])
        out = {
            "indptr": np.asarray(d_indptr[lo : hi + 1]) - start,
            "indices": self.section("d_indices")[start:stop],
        }
        weights = self.section("data_weights")
        if weights is not None:
            out["data_weights"] = weights[lo:hi]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        h = self.header
        return (
            f"GraphStore({str(self.path)!r}, |Q|={h.num_queries}, "
            f"|D|={h.num_data}, |E|={h.num_edges})"
        )


def write_store(graph: BipartiteGraph, path: str | Path, name: str | None = None) -> None:
    """Write an in-memory graph as one ``.rgs`` store (the direct path).

    The chunked converters in :mod:`repro.storage.convert` are the
    bounded-RSS route for graphs that do not fit in memory; this helper
    covers the already-loaded case (``save_graph`` dispatch, tests).
    """
    with StoreWriter(
        path,
        num_queries=graph.num_queries,
        num_data=graph.num_data,
        name=graph.name if name is None else name,
    ) as writer:
        writer.write_section("q_indptr", graph.q_indptr)
        writer.write_section("q_indices", graph.q_indices)
        writer.write_section("d_indptr", graph.d_indptr)
        writer.write_section("d_indices", graph.d_indices)
        if graph.data_weights is not None:
            writer.write_section("data_weights", np.asarray(graph.data_weights))
        if graph.query_weights is not None:
            writer.write_section("query_weights", np.asarray(graph.query_weights))
        writer.finalize(num_edges=graph.num_edges)
