"""Chunked out-of-core conversion of text/archive graphs into ``.rgs`` stores.

:func:`convert_to_store` builds the dual-CSR store without ever holding
the edge set in memory — resident state is bounded by one edge chunk
(``chunk_edges`` incidences) plus the vertex-scale degree/weight arrays,
regardless of how many edges the source has.  The build is a classic
spill-and-merge external CSR construction:

1. **Ingest** — stream the source (hMetis / edge list / npz) as bounded
   edge chunks, appending raw ``(q, d)`` int64 pairs to a spill file
   while accumulating per-vertex raw degree counts.
2. **Scatter** — plan contiguous query-id buckets whose raw edge counts
   fit in one chunk, and re-stream the spill into one file per bucket.
3. **Merge q-side** — per bucket (ascending), dedupe with the same
   composite-key ``np.unique`` as ``BipartiteGraph.from_edges`` (all
   duplicates of a pair share its bucket, so per-bucket dedupe is
   global dedupe) and append the sorted adjacency straight into the
   store's ``q_indices`` section; scatter the surviving pairs into
   data-id buckets for the reverse direction.
4. **Merge d-side** — per data bucket, sort by ``(d, q)`` and append to
   ``d_indices``; then stamp both indptr sections from the true
   (post-dedupe) degrees and the weight columns.

The resulting store views array-identically to
``write_store(load_graph(src))`` — the converter's canonical ordering
matches ``from_edges`` exactly, which the tests pin.  (The files
themselves differ in section order: the converter streams ``q_indices`` /
``d_indices`` first because their lengths settle last.)
"""

from __future__ import annotations

import tempfile
import zipfile
from pathlib import Path
from typing import Iterator

import numpy as np

from ..hypergraph.bipartite import GraphValidationError
from ..hypergraph.io import (
    iter_hmetis_edge_chunks,
    read_hmetis_header,
    read_hmetis_vertex_weights,
)
from .format import StoreHeader, StoreWriter

__all__ = ["convert_to_store", "CONVERT_SUFFIXES"]

#: Source formats the converter can stream.
CONVERT_SUFFIXES = (".hgr", ".tsv", ".txt", ".edges", ".npz")

#: Default chunk size: 1M incidences ≈ 16 MiB of resident pair data.
DEFAULT_CHUNK_EDGES = 1 << 20


# ----------------------------------------------------------------------
# Streaming sources
# ----------------------------------------------------------------------
class _HmetisSource:
    """Streams an ``.hgr`` file; weight sections land on the instance."""

    def __init__(self, path: Path, chunk_edges: int):
        self._handle = path.open("r", encoding="utf-8")
        self._chunk_edges = chunk_edges
        nq, nd, has_qw, self._has_vw = read_hmetis_header(self._handle)
        self.num_queries: int | None = nq
        self.num_data: int | None = nd
        self.query_weights = np.empty(nq, dtype=np.float64) if has_qw else None
        self.data_weights: np.ndarray | None = None

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        yield from iter_hmetis_edge_chunks(
            self._handle,
            self.num_queries,
            self.query_weights is not None,
            self.query_weights,
            self._chunk_edges,
        )
        if self._has_vw:
            self.data_weights = read_hmetis_vertex_weights(
                self._handle, self.num_data
            )
        self._handle.close()


class _EdgeListSource:
    """Streams a ``query<TAB>data`` text file; ranges inferred by the build."""

    def __init__(self, path: Path, chunk_edges: int):
        self._path = path
        self._chunk_edges = chunk_edges
        self.num_queries: int | None = None
        self.num_data: int | None = None
        self.query_weights = None
        self.data_weights = None

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        qs: list[int] = []
        ds: list[int] = []
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                qs.append(int(parts[0]))
                ds.append(int(parts[1]))
                if len(qs) >= self._chunk_edges:
                    yield np.asarray(qs, dtype=np.int64), np.asarray(ds, dtype=np.int64)
                    qs, ds = [], []
        if qs:
            yield np.asarray(qs, dtype=np.int64), np.asarray(ds, dtype=np.int64)


def _iter_npy_member(
    archive: zipfile.ZipFile, member: str, chunk_items: int
) -> Iterator[np.ndarray]:
    """Stream a 1-D array member of an npz archive in bounded chunks.

    Decompresses incrementally through the zip stream — the member is
    never fully resident.  Falls back to one whole-array chunk for npy
    header versions this reader does not know.
    """
    with archive.open(member) as stream:
        version = np.lib.format.read_magic(stream)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(stream)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(stream)
        else:  # pragma: no cover - future npy versions
            yield np.lib.format.read_array(stream, allow_pickle=False)
            return
        total = int(np.prod(shape, dtype=np.int64))
        itemsize = dtype.itemsize
        remaining = total
        while remaining:
            take = min(remaining, chunk_items)
            raw = stream.read(take * itemsize)
            if len(raw) != take * itemsize:
                raise GraphValidationError(
                    f"npz member {member!r} ended {take * itemsize - len(raw)} "
                    "bytes early"
                )
            yield np.frombuffer(raw, dtype=dtype)
            remaining -= take


class _NpzSource:
    """Streams a ``save_npz`` archive without materializing ``q_indices``."""

    def __init__(self, path: Path, chunk_edges: int):
        self._path = path
        self._chunk_edges = chunk_edges
        with np.load(path, allow_pickle=False) as archive:
            self.num_queries = int(archive["num_queries"])
            self.num_data = int(archive["num_data"])
            # Vertex-scale members are bounded-RSS by definition; only the
            # edge-scale q_indices member needs the streaming path.
            self._q_indptr = np.asarray(archive["q_indptr"], dtype=np.int64)
            self.data_weights = (
                np.asarray(archive["data_weights"])
                if "data_weights" in archive
                else None
            )
            self.query_weights = (
                np.asarray(archive["query_weights"])
                if "query_weights" in archive
                else None
            )

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indptr = self._q_indptr
        offset = 0
        with zipfile.ZipFile(self._path) as archive:
            for d_chunk in _iter_npy_member(
                archive, "q_indices.npy", self._chunk_edges
            ):
                # Row of edge slot e: the indptr interval containing e.
                slots = np.arange(offset, offset + d_chunk.size, dtype=np.int64)
                q_chunk = np.searchsorted(indptr, slots, side="right") - 1
                yield q_chunk, np.asarray(d_chunk, dtype=np.int64)
                offset += d_chunk.size


def _open_source(path: Path, chunk_edges: int):
    suffix = path.suffix.lower()
    if suffix == ".hgr":
        return _HmetisSource(path, chunk_edges)
    if suffix in (".tsv", ".txt", ".edges"):
        return _EdgeListSource(path, chunk_edges)
    if suffix == ".npz":
        return _NpzSource(path, chunk_edges)
    raise GraphValidationError(
        f"cannot stream-convert {suffix!r} (known: {', '.join(CONVERT_SUFFIXES)})"
    )


# ----------------------------------------------------------------------
# External CSR build
# ----------------------------------------------------------------------
def _grow_accumulate(counts: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Add a bincount of ``ids`` into ``counts``, growing it as needed."""
    if ids.size == 0:
        return counts
    need = int(ids.max()) + 1
    if need > counts.size:
        grown = np.zeros(max(need, 2 * counts.size), dtype=np.int64)
        grown[: counts.size] = counts
        counts = grown
    counts += np.bincount(ids, minlength=counts.size)
    return counts


def _plan_buckets(degrees: np.ndarray, cap: int) -> np.ndarray:
    """Contiguous vertex-range boundaries with ≤ ``cap`` edges per range.

    A single vertex whose degree exceeds ``cap`` gets a range of its own
    (its bucket transiently holds more than ``cap`` pairs — degree-bounded,
    the best any contiguous plan can do).
    """
    n = degrees.size
    cum = np.concatenate(([0], np.cumsum(degrees, dtype=np.int64)))
    bounds = [0]
    while bounds[-1] < n:
        start = bounds[-1]
        nxt = int(np.searchsorted(cum, cum[start] + cap, side="right")) - 1
        bounds.append(min(max(nxt, start + 1), n))
    return np.asarray(bounds, dtype=np.int64)


def _iter_pair_file(path: Path, chunk_edges: int) -> Iterator[np.ndarray]:
    """Stream a raw spill file as ``(n, 2)`` int64 pair chunks."""
    with path.open("rb") as handle:
        while True:
            raw = handle.read(chunk_edges * 16)
            if not raw:
                return
            yield np.frombuffer(raw, dtype="<i8").reshape(-1, 2)


def _scatter(
    pairs: np.ndarray,
    column: int,
    bounds: np.ndarray,
    handles: list,
) -> None:
    """Append each pair row to the bucket file its ``column`` id falls in."""
    bucket = np.searchsorted(bounds, pairs[:, column], side="right") - 1
    for b in np.unique(bucket):
        handles[b].write(np.ascontiguousarray(pairs[bucket == b]).tobytes())


def convert_to_store(
    src: str | Path,
    dst: str | Path,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    name: str | None = None,
) -> StoreHeader:
    """Stream-convert ``src`` into the ``.rgs`` store ``dst``.

    Never materializes the full edge set: peak RSS is one ``chunk_edges``
    bucket of pairs plus vertex-scale arrays.  Spill files live in a
    temporary directory next to ``dst`` (same filesystem) and are
    removed on exit, success or failure.  Returns the finalized header.
    """
    src, dst = Path(src), Path(dst)
    source = _open_source(src, chunk_edges)
    store_name = name if name is not None else src.stem
    with tempfile.TemporaryDirectory(
        dir=dst.parent, prefix=".rgs-spill-"
    ) as tmp_str:
        tmp = Path(tmp_str)
        # -- pass 1: ingest to spill, accumulate raw degrees -------------
        spill = tmp / "edges.raw"
        q_deg = np.zeros(1024, dtype=np.int64)
        d_deg = np.zeros(1024, dtype=np.int64)
        total_raw = 0
        with spill.open("wb") as out:
            for q_chunk, d_chunk in source.chunks():
                if q_chunk.size and (q_chunk.min() < 0 or d_chunk.min() < 0):
                    raise GraphValidationError("vertex ids must be non-negative")
                q_deg = _grow_accumulate(q_deg, q_chunk)
                d_deg = _grow_accumulate(d_deg, d_chunk)
                total_raw += q_chunk.size
                pairs = np.empty((q_chunk.size, 2), dtype="<i8")
                pairs[:, 0] = q_chunk
                pairs[:, 1] = d_chunk
                out.write(pairs.tobytes())
        seen_q = int(np.flatnonzero(q_deg)[-1]) + 1 if q_deg.any() else 0
        seen_d = int(np.flatnonzero(d_deg)[-1]) + 1 if d_deg.any() else 0
        nq = source.num_queries if source.num_queries is not None else seen_q
        nd = source.num_data if source.num_data is not None else seen_d
        if seen_q > nq or seen_d > nd:
            raise GraphValidationError(
                f"{src}: edge endpoint out of declared vertex range "
                f"(saw q<{seen_q}, d<{seen_d}; declared {nq}x{nd})"
            )
        q_deg = np.resize(q_deg, nq) if q_deg.size >= nq else np.concatenate(
            [q_deg, np.zeros(nq - q_deg.size, dtype=np.int64)]
        )
        d_deg = np.resize(d_deg, nd) if d_deg.size >= nd else np.concatenate(
            [d_deg, np.zeros(nd - d_deg.size, dtype=np.int64)]
        )

        writer = StoreWriter(dst, num_queries=nq, num_data=nd, name=store_name)
        try:
            # -- pass 2a: scatter the spill into query-range buckets -----
            q_bounds = _plan_buckets(q_deg, chunk_edges)
            num_qb = max(len(q_bounds) - 1, 0)
            if num_qb <= 1:
                q_paths = [spill]
            else:
                q_paths = [tmp / f"q{i}.raw" for i in range(num_qb)]
                q_handles = [p.open("wb") for p in q_paths]
                try:
                    for pairs in _iter_pair_file(spill, chunk_edges):
                        _scatter(pairs, 0, q_bounds, q_handles)
                finally:
                    for h in q_handles:
                        h.close()
                spill.unlink()

            d_bounds = _plan_buckets(d_deg, chunk_edges)
            num_db = max(len(d_bounds) - 1, 0)
            d_paths = [tmp / f"d{i}.raw" for i in range(num_db)]
            d_handles = [p.open("wb") for p in d_paths]

            # -- pass 2b: dedupe + q-side merge, rescatter by data id ----
            true_q_deg = np.zeros(nq, dtype=np.int64)
            true_d_deg = np.zeros(nd, dtype=np.int64)
            num_edges = 0
            writer.begin_section("q_indices")
            try:
                for i, q_path in enumerate(q_paths):
                    raw = np.fromfile(q_path, dtype="<i8").reshape(-1, 2)
                    if raw.size == 0:
                        continue
                    # Identical canonicalization to from_edges: unique on
                    # the composite key sorts by (q, d) and drops dupes.
                    key = np.unique(raw[:, 0] * nd + raw[:, 1])
                    q_ids = key // nd
                    d_ids = key % nd
                    writer.append(d_ids)
                    num_edges += key.size
                    lo, hi = (q_bounds[i], q_bounds[i + 1]) if num_qb > 1 else (0, nq)
                    true_q_deg[lo:hi] += np.bincount(q_ids - lo, minlength=hi - lo)
                    pairs = np.empty((key.size, 2), dtype="<i8")
                    pairs[:, 0] = q_ids
                    pairs[:, 1] = d_ids
                    _scatter(pairs, 1, d_bounds, d_handles)
                    if q_path != spill:
                        q_path.unlink()
            finally:
                for h in d_handles:
                    h.close()
            writer.end_section()

            # -- pass 3: d-side merge ------------------------------------
            writer.begin_section("d_indices")
            for i, d_path in enumerate(d_paths):
                raw = np.fromfile(d_path, dtype="<i8").reshape(-1, 2)
                if raw.size == 0:
                    continue
                # Sort by (d, q); pairs are already unique.  Within a row
                # this matches from_edges' stable d-sort of (q, d)-ordered
                # input: q ascending.
                order = np.argsort(raw[:, 1] * max(nq, 1) + raw[:, 0])
                writer.append(raw[order, 0])
                lo, hi = d_bounds[i], d_bounds[i + 1]
                true_d_deg[lo:hi] += np.bincount(raw[:, 1] - lo, minlength=hi - lo)
                d_path.unlink()
            writer.end_section()

            # -- indptr + weights ---------------------------------------
            q_indptr = np.concatenate(
                ([0], np.cumsum(true_q_deg, dtype=np.int64))
            )
            d_indptr = np.concatenate(
                ([0], np.cumsum(true_d_deg, dtype=np.int64))
            )
            writer.write_section("q_indptr", q_indptr)
            writer.write_section("d_indptr", d_indptr)
            if source.data_weights is not None:
                writer.write_section("data_weights", source.data_weights)
            if source.query_weights is not None:
                writer.write_section("query_weights", source.query_weights)
            return writer.finalize(num_edges=num_edges)
        except BaseException:
            writer.abort()
            raise
