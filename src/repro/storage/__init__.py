"""Out-of-core graph storage: the ``.rgs`` binary columnar store.

The subsystem has three layers:

* :mod:`repro.storage.format` — the on-disk format: magic + versioned
  header, explicit-endian section catalogue (:data:`STORE_SCHEMA`), the
  sequential :class:`StoreWriter`, and the wire-style error taxonomy
  (:class:`StoreFormatError` / :class:`TruncatedStoreError`).
* :mod:`repro.storage.store` — :class:`GraphStore` readers:
  zero-copy mmap views that duck-type :class:`BipartiteGraph`
  (:class:`StoreBackedGraph`), partition-slice readers for distributed
  workers, and the direct :func:`write_store` path.
* :mod:`repro.storage.convert` — :func:`convert_to_store`, the
  bounded-RSS spill-and-merge converter from hMetis / edge-list / npz.

See docs/architecture.md ("Storage layer") for the format specification.
"""

from .convert import CONVERT_SUFFIXES, convert_to_store
from .format import (
    FORMAT_VERSION,
    MAGIC,
    STORE_SCHEMA,
    StoreFormatError,
    StoreHeader,
    StoreSchema,
    StoreWriter,
    StorageError,
    TruncatedStoreError,
    read_header,
)
from .store import GraphStore, StoreBackedGraph, open_store_view, write_store

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "STORE_SCHEMA",
    "StoreSchema",
    "StoreHeader",
    "StoreWriter",
    "StorageError",
    "StoreFormatError",
    "TruncatedStoreError",
    "read_header",
    "GraphStore",
    "StoreBackedGraph",
    "open_store_view",
    "write_store",
    "convert_to_store",
    "CONVERT_SUFFIXES",
]
