"""The RGS binary columnar graph format: header codec, schema, writer.

One ``.rgs`` file holds a bipartite graph as a set of named, 64-byte-aligned
binary **sections** — the CSR arrays in both directions plus the optional
weight columns — behind a fixed-size header block::

    bytes 0..3    magic  b"RGS1"
    bytes 4..7    format version, <u4
    bytes 8..15   header-JSON length, <u8
    bytes 16..    header JSON (graph shape, name, section catalogue)
    byte  4096..  section data, 64-byte aligned, in catalogue order

Every section's dtype is declared in :data:`STORE_SCHEMA` as a fixed-width,
explicit-endian dtype string (``"<i8"``, ``"<f8"``) — the same wire-dtype
exactness contract ``MessageSchema`` obeys (reprolint REP003 audits both),
so a store written on any host mmap-loads bit-identically on any other.
The header JSON records, per section, the dtype *actually on disk*; a
mismatch against the schema is a format error, never a silent reinterpret.

Failure modes mirror :mod:`repro.distributed.wire`: a file that does not
start with the magic raises :class:`StoreFormatError` (the peer format is
not RGS), an unknown version raises :class:`StoreFormatError` naming the
version, and a file shorter than its catalogue promises raises
:class:`TruncatedStoreError` stating how many bytes are outstanding.
"""

from __future__ import annotations

import json
import re
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

import numpy as np

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_SPACE",
    "SECTION_ALIGN",
    "StorageError",
    "StoreFormatError",
    "TruncatedStoreError",
    "StoreSchema",
    "STORE_SCHEMA",
    "StoreHeader",
    "SectionInfo",
    "StoreWriter",
    "read_header",
]

MAGIC = b"RGS1"
FORMAT_VERSION = 1
#: fixed header block; section data starts here.  Generous for the small
#: catalogue (≤ 7 sections), asserted at finalize time.
HEADER_SPACE = 4096
SECTION_ALIGN = 64
#: magic + <u4 version + <u8 header-JSON length.
PREAMBLE = struct.Struct("<4sIQ")

#: explicit-endian multibyte, or order-free single-byte, dtype strings —
#: the same acceptance set as the wire schemas (REP003).
_DTYPE_RE = re.compile(r"^(?:[<>][iufc](?:2|4|8|16)|\|?[iub]1|\|?\?)$")


class StorageError(ValueError):
    """Base class for graph-store format failures."""


class StoreFormatError(StorageError):
    """The file does not speak the RGS format (bad magic/version/header)."""


class TruncatedStoreError(StorageError):
    """The file ends before the bytes its header catalogue promises."""


class StoreSchema:
    """The column catalogue of the store format: ``(name, dtype)`` pairs.

    Dtypes must be fixed-width and explicit-endian (or single-byte), the
    REP003 wire-exactness contract — a platform-native dtype here would
    make the same file read differently across hosts.  Validated both
    statically (reprolint audits literal ``StoreSchema(...)`` calls) and
    at construction time.
    """

    def __init__(self, fields: tuple):
        self.fields = tuple((str(name), str(dtype)) for name, dtype in fields)
        for name, dtype in self.fields:
            if not _DTYPE_RE.match(dtype):
                raise StoreFormatError(
                    f"store column {name!r} declares dtype {dtype!r}; store "
                    "dtypes must be fixed-width and explicit-endian "
                    "(e.g. '<i8', '<f8')"
                )
        self._by_name = dict(self.fields)

    def dtype_of(self, name: str) -> str:
        if name not in self._by_name:
            raise StoreFormatError(
                f"unknown store section {name!r}; "
                f"known: {', '.join(n for n, _ in self.fields)}"
            )
        return self._by_name[name]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name


#: v1 column catalogue.  CSR adjacency in both directions (so the d-side
#: partition slices and the q-side gain kernels are both zero-copy), plus
#: the optional weight columns.  ``data_weights`` may be 2-D (multi-dim
#: balance); all other sections are 1-D.
STORE_SCHEMA = StoreSchema(fields=(
    ("q_indptr", "<i8"),
    ("q_indices", "<i8"),
    ("d_indptr", "<i8"),
    ("d_indices", "<i8"),
    ("data_weights", "<f8"),
    ("query_weights", "<f8"),
))


@dataclass(frozen=True)
class SectionInfo:
    """One catalogued section: where it lives and how to map it."""

    name: str
    dtype: str
    shape: tuple
    offset: int
    nbytes: int


@dataclass(frozen=True)
class StoreHeader:
    """Decoded header block of one ``.rgs`` file."""

    version: int
    num_queries: int
    num_data: int
    num_edges: int
    name: str
    sections: tuple

    def section(self, name: str) -> SectionInfo | None:
        for info in self.sections:
            if info.name == name:
                return info
        return None

    def to_json(self) -> dict:
        return {
            "num_queries": self.num_queries,
            "num_data": self.num_data,
            "num_edges": self.num_edges,
            "name": self.name,
            "sections": [
                {
                    "name": s.name,
                    "dtype": s.dtype,
                    "shape": list(s.shape),
                    "offset": s.offset,
                    "nbytes": s.nbytes,
                }
                for s in self.sections
            ],
        }


def read_header(path: str | Path) -> StoreHeader:
    """Decode and validate the header block of ``path``.

    Mirrors the wire codec's failure taxonomy: bad magic / bad version /
    undecodable catalogue raise :class:`StoreFormatError`; a file shorter
    than the preamble, the header JSON, or any catalogued section raises
    :class:`TruncatedStoreError` naming the outstanding bytes.
    """
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb") as handle:
        preamble = handle.read(PREAMBLE.size)
        if len(preamble) < PREAMBLE.size:
            raise TruncatedStoreError(
                f"{path}: file ends inside the store preamble "
                f"({PREAMBLE.size - len(preamble)} of {PREAMBLE.size} bytes outstanding)"
            )
        magic, version, json_len = PREAMBLE.unpack(preamble)
        if magic != MAGIC:
            raise StoreFormatError(
                f"{path}: bad store magic {magic!r} (expected {MAGIC!r}): "
                "not a repro graph store"
            )
        if version > FORMAT_VERSION:
            raise StoreFormatError(
                f"{path}: store format version {version} is newer than this "
                f"reader (supports up to {FORMAT_VERSION}); upgrade repro or "
                "re-convert the graph"
            )
        if version < 1:
            raise StoreFormatError(f"{path}: invalid store format version {version}")
        if PREAMBLE.size + json_len > size:
            raise TruncatedStoreError(
                f"{path}: file ends inside the header JSON "
                f"({PREAMBLE.size + json_len - size} of {json_len} bytes outstanding)"
            )
        raw = handle.read(json_len)
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"{path}: undecodable store header: {exc}") from exc
    try:
        sections = tuple(
            SectionInfo(
                name=str(s["name"]),
                dtype=str(s["dtype"]),
                shape=tuple(int(x) for x in s["shape"]),
                offset=int(s["offset"]),
                nbytes=int(s["nbytes"]),
            )
            for s in data["sections"]
        )
        header = StoreHeader(
            version=int(version),
            num_queries=int(data["num_queries"]),
            num_data=int(data["num_data"]),
            num_edges=int(data["num_edges"]),
            name=str(data.get("name", "")),
            sections=sections,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreFormatError(f"{path}: malformed store header: {exc!r}") from exc
    for info in header.sections:
        if info.name not in STORE_SCHEMA:
            raise StoreFormatError(
                f"{path}: header catalogues unknown section {info.name!r}"
            )
        expected = STORE_SCHEMA.dtype_of(info.name)
        if info.dtype != expected:
            raise StoreFormatError(
                f"{path}: section {info.name!r} declares dtype {info.dtype!r} "
                f"but the v{FORMAT_VERSION} schema requires {expected!r}"
            )
        want = int(np.prod(info.shape, dtype=np.int64)) * np.dtype(info.dtype).itemsize
        if want != info.nbytes:
            raise StoreFormatError(
                f"{path}: section {info.name!r} shape {info.shape} disagrees "
                f"with its byte length {info.nbytes}"
            )
        if info.nbytes and info.offset + info.nbytes > size:
            raise TruncatedStoreError(
                f"{path}: file ends inside section {info.name!r} "
                f"({info.offset + info.nbytes - size} of {info.nbytes} bytes outstanding)"
            )
    return header


def _align(offset: int) -> int:
    return (offset + SECTION_ALIGN - 1) // SECTION_ALIGN * SECTION_ALIGN


class StoreWriter:
    """Sequential section writer for one ``.rgs`` file.

    Sections are appended one at a time — ``begin_section`` /
    ``append`` / ``end_section`` for chunked streams of unknown final
    length, or :meth:`write_section` for whole arrays — and
    :meth:`finalize` stamps the header block once every section's extent
    is known.  The writer never buffers section data: chunk bytes go
    straight to the file, which is what keeps the converter's RSS bounded.
    """

    def __init__(
        self, path: str | Path, num_queries: int, num_data: int, name: str = ""
    ):
        self.path = Path(path)
        self.num_queries = int(num_queries)
        self.num_data = int(num_data)
        self.num_edges = 0
        self.name = name
        self._handle: BinaryIO = self.path.open("wb")
        self._handle.truncate(HEADER_SPACE)
        self._offset = HEADER_SPACE
        self._sections: list[SectionInfo] = []
        self._open_section: str | None = None
        self._open_dtype: np.dtype | None = None
        self._open_offset = 0
        self._open_items = 0
        self._finalized = False

    # ------------------------------------------------------------------
    def begin_section(self, name: str) -> None:
        if self._open_section is not None:
            raise StoreFormatError(
                f"section {self._open_section!r} is still open; "
                "end_section() before beginning another"
            )
        if any(info.name == name for info in self._sections):
            raise StoreFormatError(f"section {name!r} written twice")
        dtype = np.dtype(STORE_SCHEMA.dtype_of(name))
        self._offset = _align(self._offset)
        self._handle.seek(self._offset)
        self._open_section = name
        self._open_dtype = dtype
        self._open_offset = self._offset
        self._open_items = 0

    def append(self, chunk: np.ndarray) -> None:
        """Append one chunk to the open section (cast to the wire dtype)."""
        if self._open_section is None:
            raise StoreFormatError("no section open for append")
        data = np.ascontiguousarray(chunk, dtype=self._open_dtype)
        self._handle.write(data.tobytes())
        self._open_items += data.size
        self._offset += data.nbytes

    def end_section(self, shape: tuple | None = None) -> None:
        """Close the open section; ``shape`` defaults to the 1-D item count."""
        if self._open_section is None:
            raise StoreFormatError("no section open to end")
        shape = tuple(int(x) for x in (shape or (self._open_items,)))
        if int(np.prod(shape, dtype=np.int64)) != self._open_items:
            raise StoreFormatError(
                f"section {self._open_section!r}: declared shape {shape} does "
                f"not cover the {self._open_items} items written"
            )
        self._sections.append(SectionInfo(
            name=self._open_section,
            dtype=str(STORE_SCHEMA.dtype_of(self._open_section)),
            shape=shape,
            offset=self._open_offset,
            nbytes=self._open_items * self._open_dtype.itemsize,
        ))
        self._open_section = None
        self._open_dtype = None

    def write_section(self, name: str, array: np.ndarray) -> None:
        """Write one whole array as a section (chunked append underneath)."""
        array = np.asarray(array)
        self.begin_section(name)
        self.append(array.reshape(-1))
        self.end_section(shape=array.shape)

    # ------------------------------------------------------------------
    def finalize(self, num_edges: int) -> StoreHeader:
        """Stamp the header block and close the file."""
        if self._open_section is not None:
            raise StoreFormatError(f"section {self._open_section!r} left open")
        self.num_edges = int(num_edges)
        header = StoreHeader(
            version=FORMAT_VERSION,
            num_queries=self.num_queries,
            num_data=self.num_data,
            num_edges=self.num_edges,
            name=self.name,
            sections=tuple(self._sections),
        )
        raw = json.dumps(header.to_json()).encode("utf-8")
        if PREAMBLE.size + len(raw) > HEADER_SPACE:
            raise StoreFormatError(
                f"store header needs {PREAMBLE.size + len(raw)} bytes, "
                f"exceeding the {HEADER_SPACE}-byte header block"
            )
        self._handle.seek(0)
        self._handle.write(PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(raw)))
        self._handle.write(raw)
        self._handle.close()
        self._finalized = True
        return header

    def abort(self) -> None:
        """Close and remove a partially written file (error-path cleanup)."""
        if not self._handle.closed:
            self._handle.close()
        if not self._finalized:
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, *_: object) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._handle.closed:  # pragma: no cover - misuse guard
            self._handle.close()
