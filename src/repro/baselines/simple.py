"""Trivial baselines: random and hash partitioning.

Random assignment is the paper's reference point for "no optimization" —
e.g. Figure 4b's fanout-40 regime is random sharding across 40 servers.
Hash partitioning (bucket = id mod k) is what production systems use before
any locality optimization; on permuted-id graphs it behaves like random.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.partition import balanced_random_assignment
from ..core.result import PartitionResult
from ..hypergraph.bipartite import BipartiteGraph

__all__ = ["random_partitioner", "hash_partitioner"]


def random_partitioner(
    graph: BipartiteGraph, k: int, seed: int = 0, **_: object
) -> PartitionResult:
    """Uniform random balanced assignment."""
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    assignment = balanced_random_assignment(graph.num_data, k, rng)
    return PartitionResult(
        assignment=assignment,
        k=k,
        method="random",
        converged=True,
        elapsed_sec=time.perf_counter() - start,
    )


def hash_partitioner(graph: BipartiteGraph, k: int, **_: object) -> PartitionResult:
    """Modulo hashing of vertex ids (deterministic, perfectly balanced ±1)."""
    start = time.perf_counter()
    assignment = (np.arange(graph.num_data, dtype=np.int64) % k).astype(np.int32)
    return PartitionResult(
        assignment=assignment,
        k=k,
        method="hash",
        converged=True,
        elapsed_sec=time.perf_counter() - start,
    )
