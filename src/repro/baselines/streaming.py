"""Single-pass streaming partitioner (HYPE-style neighborhood expansion).

The warm-start half of the ``stream-then-refine`` pipeline: one pass over
the data vertices in natural (store) order, assigning each vertex to the
bucket whose *fringe* already covers most of its query neighborhood —
the neighborhood-expansion heuristic of HYPE (PAPERS.md), adapted to the
bipartite query-data model.  Each bucket's fringe is tracked as a claimed
set over query vertices: when a data vertex lands in bucket ``b``, every
still-unclaimed adjacent query is claimed by ``b``, so later data
vertices sharing those queries score ``b`` higher and hyperedges stay
together without any global statistics.

State is O(num_queries + k): one int32 claim array and the bucket loads.
Combined with a :class:`~repro.storage.StoreBackedGraph` view the
partitioner never needs the graph in RAM — the d-side CSR rows stream
through the page cache once, in order.

Deterministic per seed: ties break to the lowest bucket index, and the
only randomness is a precomputed per-vertex salt used to spread *cold*
vertices (no claimed neighbors) across the least-loaded buckets.

Capacity keeps :func:`~repro.objectives.evaluate_partition` happy at the
same ``epsilon``: a bucket never exceeds
``max(ceil(n / k), floor((1 + eps) * n / k))`` vertices (the discrete
ceiling is always feasible), and the weighted variant enforces
``(1 + eps) * w(D) / k`` with a least-loaded fallback when an oversized
vertex fits nowhere.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.result import PartitionResult
from ..hypergraph.bipartite import BipartiteGraph

__all__ = ["streaming_partitioner"]


def streaming_partitioner(
    graph: BipartiteGraph,
    k: int,
    epsilon: float = 0.05,
    seed: int = 0,
    **_: object,
) -> PartitionResult:
    """One-pass neighborhood-expansion assignment of the data vertices."""
    start = time.perf_counter()
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    n = graph.num_data
    weights = graph.weights_or_unit()
    total = float(weights.sum())
    if graph.data_weights is None:
        # Unit weights: the discrete ceiling is always feasible, so the
        # assignment below never needs the fallback and the imbalance
        # bound max(eps, k/n discretization) holds unconditionally.
        cap = float(max(-(-n // k), int((1.0 + epsilon) * n / k)))
    else:
        cap = (1.0 + epsilon) * total / k
    d_indptr, d_indices = graph.d_indptr, graph.d_indices
    claimed_by = np.full(graph.num_queries, -1, dtype=np.int32)
    loads = np.zeros(k, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int32)
    # Per-vertex salt: the seed's only influence, spreading cold vertices
    # (every vertex, on the first pass through an empty fringe) across the
    # least-loaded buckets instead of always bucket 0.
    salt = np.random.default_rng(seed).integers(0, 1 << 30, size=n)
    scores = np.zeros(k, dtype=np.int64)
    fallbacks = 0
    for v in range(n):
        neighbors = d_indices[d_indptr[v] : d_indptr[v + 1]]
        owners = claimed_by[neighbors]
        owners = owners[owners >= 0]
        scores[:] = 0
        if owners.size:
            np.add.at(scores, owners, 1)
        open_bucket = loads + weights[v] <= cap
        if not open_bucket.any():
            # Only reachable with non-unit weights: a vertex heavier than
            # any remaining headroom goes to the least-loaded bucket.
            fallbacks += 1
            b = int(np.argmin(loads))
        elif owners.size and scores[open_bucket].max() > 0:
            best = np.where(open_bucket, scores, -1)
            b = int(np.argmax(best))  # lowest index wins ties: deterministic
        else:
            # Cold vertex: seeded spread over the least-loaded open buckets.
            open_loads = np.where(open_bucket, loads, np.inf)
            least = np.flatnonzero(open_loads == open_loads.min())
            b = int(least[salt[v] % least.size])
        assignment[v] = b
        loads[b] += weights[v]
        claimed_by[neighbors[claimed_by[neighbors] < 0]] = b
    return PartitionResult(
        assignment=assignment,
        k=k,
        method="streaming",
        converged=True,
        elapsed_sec=time.perf_counter() - start,
        extra={"fallback_assignments": fallbacks},
    )
