"""Fiduccia–Mattheyses 2-way refinement for hypergraphs [18].

The local-refinement engine inside every multi-level partitioner the paper
compares against.  For a bisection, minimizing fanout is identical to
minimizing the hyperedge cut (fanout(q) ∈ {1, 2}), so the classic FM gain
applies:

* moving v off a side where it is the query's last pin *uncuts* the query
  (+1), and
* moving v away from a side when the query has no pin on the other side
  *cuts* it (−1).

Implementation: lazy max-heap of gains, weighted balance with hard caps,
pass-based with rollback to the best prefix — the textbook linear-time
scheme with critical-net gain updates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ...hypergraph.bipartite import BipartiteGraph

__all__ = ["FMStats", "initial_gains", "fm_pass", "fm_refine"]


@dataclass
class FMStats:
    """Outcome of one or more FM passes."""

    passes: int = 0
    moves_applied: int = 0
    cut_before: int = 0
    cut_after: int = 0


def _side_counts(graph: BipartiteGraph, side: np.ndarray) -> np.ndarray:
    """|Q| × 2 pin counts per side."""
    key = graph.q_of_edge * 2 + side[graph.q_indices]
    return (
        np.bincount(key, minlength=graph.num_queries * 2)
        .reshape(graph.num_queries, 2)
        .astype(np.int64)
    )


def cut_size(counts: np.ndarray) -> int:
    """Number of queries spanning both sides."""
    return int(((counts[:, 0] > 0) & (counts[:, 1] > 0)).sum())


def initial_gains(graph: BipartiteGraph, side: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorized FM gains for every data vertex."""
    own = counts[graph.d_indices, side[graph.d_of_edge]]
    other = counts[graph.d_indices, 1 - side[graph.d_of_edge]]
    per_edge = (own == 1).astype(np.int64) - (other == 0).astype(np.int64)
    gains = np.zeros(graph.num_data, dtype=np.int64)
    np.add.at(gains, graph.d_of_edge, per_edge)
    return gains


def fm_pass(
    graph: BipartiteGraph,
    side: np.ndarray,
    weights: np.ndarray,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_moves: int | None = None,
) -> tuple[int, int]:
    """One FM pass; mutates ``side``.  Returns (gain_realized, moves_kept)."""
    num_data = graph.num_data
    counts = _side_counts(graph, side)
    gains = initial_gains(graph, side, counts)
    sizes = np.array(
        [weights[side == 0].sum(), weights[side == 1].sum()], dtype=np.float64
    )
    locked = np.zeros(num_data, dtype=bool)

    heap: list[tuple[float, float, int]] = [
        (-float(gains[v]), float(rng.random()), v) for v in range(num_data)
    ]
    heapq.heapify(heap)

    def push(v: int) -> None:
        heapq.heappush(heap, (-float(gains[v]), float(rng.random()), v))

    move_log: list[int] = []
    cumulative = 0
    best_cumulative = 0
    best_prefix = 0
    budget = max_moves if max_moves is not None else num_data

    while heap and len(move_log) < budget:
        neg_gain, _, v = heapq.heappop(heap)
        if locked[v] or -neg_gain != gains[v]:
            continue  # stale heap entry
        src = int(side[v])
        dst = 1 - src
        if sizes[dst] + weights[v] > caps[dst]:
            locked[v] = True  # cannot move this pass; lock to make progress
            continue

        # --- FM critical-net gain updates (before counts change) ---
        for q in graph.data_neighbors(v).tolist():
            n_dst = counts[q, dst]
            if n_dst == 0:
                for u in graph.query_neighbors(q).tolist():
                    if not locked[u] and u != v:
                        gains[u] += 1
                        push(u)
            elif n_dst == 1:
                for u in graph.query_neighbors(q).tolist():
                    if not locked[u] and side[u] == dst:
                        gains[u] -= 1
                        push(u)
                        break

        side[v] = dst
        sizes[src] -= weights[v]
        sizes[dst] += weights[v]
        cumulative += int(gains[v])
        locked[v] = True
        move_log.append(v)

        for q in graph.data_neighbors(v).tolist():
            counts[q, src] -= 1
            counts[q, dst] += 1
            n_src = counts[q, src]
            if n_src == 0:
                for u in graph.query_neighbors(q).tolist():
                    if not locked[u]:
                        gains[u] -= 1
                        push(u)
            elif n_src == 1:
                for u in graph.query_neighbors(q).tolist():
                    if not locked[u] and side[u] == src:
                        gains[u] += 1
                        push(u)
                        break

        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(move_log)

    # Roll back every move after the best prefix.
    for v in move_log[best_prefix:]:
        side[v] = 1 - side[v]
    return best_cumulative, best_prefix


def fm_refine(
    graph: BipartiteGraph,
    side: np.ndarray,
    weights: np.ndarray,
    caps: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> FMStats:
    """Run FM passes until a pass yields no improvement."""
    stats = FMStats(cut_before=cut_size(_side_counts(graph, side)))
    for _ in range(max_passes):
        gain, moves = fm_pass(graph, side, weights, caps, rng)
        stats.passes += 1
        stats.moves_applied += moves
        if gain <= 0:
            break
    stats.cut_after = cut_size(_side_counts(graph, side))
    return stats
