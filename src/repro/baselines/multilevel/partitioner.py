"""Serial multi-level hypergraph partitioner (the Mondriaan/Zoltan class).

V-cycle per bisection: coarsen by heavy-edge matching, partition the
coarsest hypergraph greedily, then uncoarsen with FM refinement at every
level.  k-way partitions come from recursive bisection with proportional
targets, like the single-machine tools the paper compares against
(Section 4.2.2).

``style`` presets emulate the tool families' differing aggressiveness:

* ``"mondriaan"`` — coarsen far (256 vertices), 4 FM passes (best quality);
* ``"zoltan"`` — coarsen to 512, 3 passes (the distributed tool's
  parallel-friendly settings);
* ``"parkway"`` — coarsen to 1024, 2 passes (coarser + fewer passes, as a
  parallel coordinator-bound refinement affords).

These stand in for the closed binaries; see DESIGN.md Section 5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ...core.partition import balanced_random_assignment
from ...core.result import PartitionResult
from ...hypergraph.bipartite import BipartiteGraph
from .coarsen import coarsen
from .fm import fm_refine

__all__ = ["MultilevelPartitioner", "multilevel_partition", "STYLES"]

STYLES: dict[str, dict[str, float]] = {
    "mondriaan": {"coarsen_to": 256, "max_passes": 4, "max_degree": 64},
    "zoltan": {"coarsen_to": 512, "max_passes": 3, "max_degree": 48},
    "parkway": {"coarsen_to": 1024, "max_passes": 2, "max_degree": 32},
}


@dataclass
class MultilevelPartitioner:
    """Recursive-bisection multi-level partitioner with FM refinement."""

    k: int
    epsilon: float = 0.05
    seed: int = 0
    style: str = "mondriaan"

    def __post_init__(self) -> None:
        if self.style not in STYLES:
            raise ValueError(f"unknown style {self.style!r}; known: {sorted(STYLES)}")

    # ------------------------------------------------------------------
    def partition(self, graph: BipartiteGraph) -> PartitionResult:
        """k-way partition via recursive bisection of multilevel V-cycles."""
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        weights = graph.weights_or_unit()
        assignment = np.zeros(graph.num_data, dtype=np.int32)
        total_weight = float(weights.sum())

        stack = [(np.arange(graph.num_data, dtype=np.int64), 0, self.k)]
        while stack:
            data_ids, offset, span = stack.pop()
            if span == 1 or data_ids.size == 0:
                assignment[data_ids] = offset
                continue
            left_span = (span + 1) // 2
            right_span = span - left_span
            side = self._bisect(
                graph, data_ids, weights, left_span, right_span, total_weight, rng
            )
            stack.append((data_ids[side == 0], offset, left_span))
            stack.append((data_ids[side == 1], offset + left_span, right_span))

        return PartitionResult(
            assignment=assignment,
            k=self.k,
            method=f"multilevel-{self.style}",
            converged=True,
            elapsed_sec=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _bisect(
        self,
        graph: BipartiteGraph,
        data_ids: np.ndarray,
        weights: np.ndarray,
        left_span: int,
        right_span: int,
        total_weight: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        params = STYLES[self.style]
        proportions = np.array([left_span, right_span], dtype=np.float64)
        n_group = data_ids.size
        if n_group <= 2:
            return balanced_random_assignment(n_group, 2, rng, proportions=proportions)

        subgraph, _ = graph.induced_subgraph(data_ids)
        sub_weights = weights[data_ids].astype(np.float64)

        # Global-target capacities with the same ε schedule as SHP-2: early
        # (wide-span) bisections stay near-perfectly balanced so per-level
        # slack cannot compound past ε at the leaves.
        span = left_span + right_span
        eps_eff = self.epsilon * min(1.0, 2.0 / span)
        global_target = proportions * (total_weight / self.k)
        caps = np.maximum((1.0 + eps_eff) * global_target, global_target)
        deficit = float(sub_weights.sum()) - float(caps.sum())
        if deficit > 0:
            caps = caps + deficit * proportions / proportions.sum() + 1e-9

        levels = coarsen(
            subgraph,
            sub_weights,
            target_vertices=int(params["coarsen_to"]),
            rng=rng,
            max_degree=int(params["max_degree"]),
        )
        coarsest = levels[-1].graph if levels else subgraph
        coarsest_weights = levels[-1].weights if levels else sub_weights

        side = _greedy_initial(coarsest_weights, caps, proportions, rng)
        fm_refine(
            coarsest, side, coarsest_weights, caps, rng,
            max_passes=int(params["max_passes"]),
        )
        # Uncoarsen: project through the hierarchy, refining at each level.
        for level_idx in range(len(levels) - 1, -1, -1):
            level = levels[level_idx]
            side = side[level.parent_map]
            finer_graph = levels[level_idx - 1].graph if level_idx > 0 else subgraph
            finer_weights = (
                levels[level_idx - 1].weights if level_idx > 0 else sub_weights
            )
            fm_refine(
                finer_graph, side, finer_weights, caps, rng,
                max_passes=int(params["max_passes"]),
            )
        return side


def _greedy_initial(
    weights: np.ndarray,
    caps: np.ndarray,
    proportions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Weight-aware initial bisection: heaviest first to the emptier side."""
    n = weights.size
    side = np.zeros(n, dtype=np.int32)
    order = np.argsort(-weights, kind="stable")
    sizes = np.zeros(2, dtype=np.float64)
    targets = proportions / proportions.sum()
    for v in order.tolist():
        fill = sizes / np.maximum(targets, 1e-12)
        choice = int(np.argmin(fill))
        if sizes[choice] + weights[v] > caps[choice]:
            choice = 1 - choice
        side[v] = choice
        sizes[choice] += weights[v]
    return side


def multilevel_partition(
    graph: BipartiteGraph,
    k: int,
    epsilon: float = 0.05,
    seed: int = 0,
    style: str = "mondriaan",
) -> PartitionResult:
    """Convenience wrapper around :class:`MultilevelPartitioner`."""
    return MultilevelPartitioner(
        k=k, epsilon=epsilon, seed=seed, style=style
    ).partition(graph)
