"""Multi-level hypergraph partitioning (coarsen / initial / FM refine)."""

from .coarsen import CoarseLevel, coarsen, coarsen_once
from .fm import FMStats, cut_size, fm_pass, fm_refine, initial_gains
from .partitioner import STYLES, MultilevelPartitioner, multilevel_partition

__all__ = [
    "CoarseLevel",
    "coarsen",
    "coarsen_once",
    "FMStats",
    "fm_pass",
    "fm_refine",
    "initial_gains",
    "cut_size",
    "MultilevelPartitioner",
    "multilevel_partition",
    "STYLES",
]
