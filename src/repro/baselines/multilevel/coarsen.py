"""Hypergraph coarsening via heavy-edge matching.

The multi-level paradigm (Section 2: hMetis, PaToH, Mondriaan, Parkway,
Zoltan all use it) repeatedly contracts pairs of vertices that co-occur in
many hyperedges, producing a sequence of smaller hypergraphs that
approximate the original.  We score pairs with the standard normalized
heavy-edge rule — each query of degree ``d`` contributes ``1/(d−1)`` to the
pairs it induces — sampling a ring of pairs per query so the expansion stays
linear in the pin count rather than quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...hypergraph.bipartite import BipartiteGraph

__all__ = ["CoarseLevel", "coarsen_once", "coarsen"]


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy."""

    graph: BipartiteGraph
    weights: np.ndarray  # coarse vertex weights (contracted fine weights)
    parent_map: np.ndarray  # fine vertex id -> coarse vertex id


def _ring_pairs(graph: BipartiteGraph, rng: np.random.Generator, max_degree: int):
    """Sample candidate contraction pairs: a shuffled ring per query."""
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    ws: list[np.ndarray] = []
    for q in range(graph.num_queries):
        pins = graph.query_neighbors(q)
        d = pins.size
        if d < 2:
            continue
        if d > max_degree:
            pins = rng.choice(pins, size=max_degree, replace=False)
            d = max_degree
        shuffled = rng.permutation(pins)
        us.append(shuffled)
        vs.append(np.roll(shuffled, -1))
        ws.append(np.full(d, 1.0 / (d - 1)))
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    w = np.concatenate(ws)
    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * graph.num_data + hi
    unique_key, inverse = np.unique(key, return_inverse=True)
    weight = np.zeros(unique_key.size, dtype=np.float64)
    np.add.at(weight, inverse, w)
    return unique_key // graph.num_data, unique_key % graph.num_data, weight


def coarsen_once(
    graph: BipartiteGraph,
    weights: np.ndarray,
    rng: np.random.Generator,
    max_degree: int = 64,
    max_weight_ratio: float = 4.0,
) -> CoarseLevel | None:
    """One round of heavy-edge matching + contraction.

    Returns ``None`` when contraction no longer reduces the vertex count
    meaningfully (< 10%), which signals the V-cycle to stop coarsening —
    the hypergraph analogue of the paper's observation that coarsest
    hypergraphs stop shrinking (a key scalability limitation of the
    multi-level tools, Section 2).
    """
    num_data = graph.num_data
    u, v, w = _ring_pairs(graph, rng, max_degree)
    if u.size == 0:
        return None
    mean_weight = float(weights.mean()) if weights.size else 1.0
    order = np.argsort(-w, kind="stable")
    matched = np.full(num_data, -1, dtype=np.int64)
    for idx in order.tolist():
        a, b = int(u[idx]), int(v[idx])
        if matched[a] != -1 or matched[b] != -1:
            continue
        if weights[a] + weights[b] > max_weight_ratio * mean_weight:
            continue
        matched[a] = b
        matched[b] = a

    parent_map = np.full(num_data, -1, dtype=np.int64)
    next_id = 0
    for vertex in range(num_data):
        if parent_map[vertex] != -1:
            continue
        partner = matched[vertex]
        parent_map[vertex] = next_id
        if partner != -1 and parent_map[partner] == -1:
            parent_map[partner] = next_id
        next_id += 1
    if next_id > 0.9 * num_data:
        return None

    coarse_weights = np.zeros(next_id, dtype=np.float64)
    np.add.at(coarse_weights, parent_map, weights)
    coarse_graph = BipartiteGraph.from_edges(
        graph.q_of_edge,
        parent_map[graph.q_indices],
        num_queries=graph.num_queries,
        num_data=next_id,
        name=graph.name,
        dedupe=True,
    ).remove_small_queries()
    return CoarseLevel(graph=coarse_graph, weights=coarse_weights, parent_map=parent_map)


def coarsen(
    graph: BipartiteGraph,
    weights: np.ndarray,
    target_vertices: int,
    rng: np.random.Generator,
    max_levels: int = 24,
    max_degree: int = 64,
) -> list[CoarseLevel]:
    """Full coarsening chain down to roughly ``target_vertices``."""
    levels: list[CoarseLevel] = []
    current = graph
    current_weights = weights
    for _ in range(max_levels):
        if current.num_data <= target_vertices:
            break
        level = coarsen_once(current, current_weights, rng, max_degree=max_degree)
        if level is None:
            break
        levels.append(level)
        current = level.graph
        current_weights = level.weights
    return levels
