"""Resource feasibility and runtime model for distributed partitioners.

Table 3 and Figure 5 evaluate partitioners on billion-edge hypergraphs and
a 4–16 machine cluster (144 GB each, 10-hour budget) — two orders of
magnitude beyond what an in-process Python reproduction can execute.
Following the substitution rule (DESIGN.md Section 5), this module models
each tool family's feasibility and runtime from its structural scaling
laws:

* **SHP (this paper)** — executes a metered vertex-centric protocol, so its
  model is *first-principles*: per-iteration operation/message/byte counts
  from the Section 3.3 complexity analysis fed through the calibratable
  :class:`~repro.distributed.CostModel` (which
  :func:`calibrate_cost_model` can re-fit from live engine runs).
* **Zoltan-like (distributed multi-level)** — the coarsest hypergraph must
  fit a single machine before initial partitioning (the paper's first
  scalability limitation).  Social hypergraphs barely shrink their
  hyperedge sets under coarsening, so the coarsest pin count stays a large
  fraction of |E|; runtime is nearly independent of k (observed in
  Section 4.2.3).
* **Parkway-like (parallel multi-level + coordinator)** — a single
  coordinator materializes per-vertex move lists and heavyweight per-vertex
  partition structures; its published failures (out of memory beyond ~10⁶
  vertices on 144 GB machines, while succeeding on the 50M-edge but
  154k-vertex FB-50M) anchor the per-vertex coordinator footprint constant.

Constants for the closed-source tools are anchored to their published
Table 3 outcomes — they are *declared inputs* of the simulation, not
measurements; SHP's constants come from our own engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributed.cluster import ClusterSpec, CostModel
from ..distributed.metrics import JobMetrics

__all__ = [
    "GraphShape",
    "RunEstimate",
    "expected_random_fanout",
    "estimate_shp",
    "estimate_zoltan_like",
    "estimate_parkway_like",
    "calibrate_cost_model",
    "TEN_HOURS_MINUTES",
]

TEN_HOURS_MINUTES = 600.0

# --- Declared constants (see module docstring) -------------------------
_SHP_BYTES_PER_EDGE = 40  # CSR both directions + message buffers
_SHP_BYTES_PER_VERTEX = 120  # vertex state incl. gains / neighbor data refs
_ZOLTAN_BYTES_PER_PIN = 60  # distributed hypergraph storage per pin
_ZOLTAN_COARSEST_BYTES_PER_PIN = 100  # single-machine coarsest graph
_ZOLTAN_SOCIAL_COARSEST_FRACTION = 0.9  # hyperedges barely coarsen (social)
_ZOLTAN_MESH_COARSEST_FRACTION = 0.2  # meshes/webs coarsen well
_PARKWAY_BYTES_PER_PIN = 70
_PARKWAY_COORDINATOR_BYTES_PER_VERTEX = 150_000  # anchored to Table 3 failures
_ZOLTAN_MINUTES_PER_PIN_LEVEL = 2.7e-7  # anchored: soc-Pokec ≈ 42 min on 4 machines
_PARKWAY_MINUTES_PER_PIN_LEVEL = 5.2e-8  # anchored: FB-50M ≈ 11 min on 4 machines
#: Mean per-iteration activity once the caching optimization kicks in: only
#: changed vertices resend neighbor data, so traffic decays geometrically
#: over a run (Figure 7b shows movement falling below 0.1% by iteration 35).
_SHP_ACTIVITY_FACTOR = 0.25


@dataclass(frozen=True)
class GraphShape:
    """Size summary driving the model (no materialized graph needed)."""

    name: str
    num_queries: int
    num_data: int
    num_edges: int
    family: str = "social"  # "social" | "web" | "facebook"

    @property
    def avg_query_degree(self) -> float:
        return self.num_edges / max(1, self.num_queries)

    @property
    def num_vertices(self) -> int:
        return self.num_queries + self.num_data


@dataclass(frozen=True)
class RunEstimate:
    """Modeled outcome of one (tool, graph, k, cluster) cell of Table 3."""

    tool: str
    graph: str
    k: int
    machines: int
    status: str  # "ok" | "oom" | "timeout"
    minutes: float | None
    peak_machine_bytes: float

    @property
    def display(self) -> str:
        if self.status == "ok":
            return f"{self.minutes:.1f}"
        return self.status.upper()


def expected_random_fanout(avg_degree: float, k: int) -> float:
    """Expected fanout of a degree-d query under a uniform random partition.

    ``k (1 − (1 − 1/k)^d)``: the working fanout during early refinement,
    which drives superstep 2's message volume (Section 3.3).
    """
    if k <= 1:
        return 1.0
    return float(k * (1.0 - (1.0 - 1.0 / k) ** avg_degree))


# ----------------------------------------------------------------------
# SHP (first-principles from the Section 3.3 complexity analysis)
# ----------------------------------------------------------------------
def estimate_shp(
    shape: GraphShape,
    k: int,
    cluster: ClusterSpec,
    mode: str = "2",
    cost: CostModel | None = None,
    iterations_per_level: int = 20,
    max_iterations: int = 60,
) -> RunEstimate:
    """Model an SHP run: memory per machine and modeled minutes."""
    cost = cost or CostModel()
    machines = cluster.num_workers
    edges = float(shape.num_edges)
    vertices = float(shape.num_vertices)

    fanout_est = expected_random_fanout(shape.avg_query_degree, min(k, 2))
    if mode == "2":
        levels = max(1, int(np.ceil(np.log2(k))))
        iterations = iterations_per_level * levels
        gain_width = 2.0  # each vertex evaluates r = 2 targets per level
        neighbor_entries = min(2.0, fanout_est)
    else:
        levels = 1
        iterations = max_iterations
        fanout_est = expected_random_fanout(shape.avg_query_degree, k)
        # Gain evaluation is O(k |N(v)|) in the worst case, but only buckets
        # present in the neighbor data contribute non-base terms, so the
        # effective width saturates around the working fanout.
        gain_width = min(float(k), 1.5 * fanout_est)
        neighbor_entries = fanout_est

    mem = (
        _SHP_BYTES_PER_EDGE * edges + _SHP_BYTES_PER_VERTEX * vertices
    ) / machines + 8.0 * k * k / max(1, machines)
    if mem > cluster.machine.memory_bytes:
        return RunEstimate(
            f"SHP-{mode}", shape.name, k, machines, "oom", None, mem
        )

    # Per-iteration work (Section 3.3): superstep 1 |E| messages, superstep 2
    # ≈ fanout·|E| entries, supersteps 3-4 |V| messages; gain computation
    # touches gain_width entries per edge.
    ops = edges * (1.0 + gain_width) + vertices
    messages = edges * (1.0 + neighbor_entries) + 2.0 * shape.num_data
    bytes_sent = 8.0 * edges * neighbor_entries + 24.0 * edges

    # Communication does not parallelize like compute: with M machines a
    # (M−1)/M fraction of traffic crosses the network (random placement) and
    # fabric contention grows with cluster size — the paper's explanation
    # for the sublinear speedup of Figure 5b.
    remote_fraction = (machines - 1) / machines
    contention = 1.0 + 0.06 * max(0, machines - 4)
    remote_bytes_per_machine = bytes_sent * remote_fraction * contention / machines

    per_iter_sec = cost.superstep_seconds(
        ops / machines, messages / machines, remote_bytes_per_machine
    ) + 3.0 * cost.barrier_sec  # four barriers per iteration
    minutes = per_iter_sec * iterations * _SHP_ACTIVITY_FACTOR / 60.0
    status = "timeout" if minutes > TEN_HOURS_MINUTES else "ok"
    return RunEstimate(
        f"SHP-{mode}",
        shape.name,
        k,
        machines,
        status,
        minutes if status == "ok" else None,
        mem,
    )


# ----------------------------------------------------------------------
# Closed-source tool families (anchored scaling laws)
# ----------------------------------------------------------------------
def _coarsest_fraction(family: str) -> float:
    return (
        _ZOLTAN_MESH_COARSEST_FRACTION
        if family == "web"
        else _ZOLTAN_SOCIAL_COARSEST_FRACTION
    )


def estimate_zoltan_like(
    shape: GraphShape, k: int, cluster: ClusterSpec
) -> RunEstimate:
    """Model a Zoltan-class run: coarsest graph must fit one machine."""
    machines = cluster.num_workers
    edges = float(shape.num_edges)
    distributed_mem = _ZOLTAN_BYTES_PER_PIN * edges / machines
    coarsest_mem = (
        _coarsest_fraction(shape.family) * edges * _ZOLTAN_COARSEST_BYTES_PER_PIN
    )
    peak = distributed_mem + coarsest_mem  # machine hosting the coarsest graph
    if peak > cluster.machine.memory_bytes:
        return RunEstimate("Zoltan", shape.name, k, machines, "oom", None, peak)
    minutes = (
        _ZOLTAN_MINUTES_PER_PIN_LEVEL
        * edges
        * np.log2(max(2.0, shape.num_data))
        / machines
    )
    status = "timeout" if minutes > TEN_HOURS_MINUTES else "ok"
    return RunEstimate(
        "Zoltan", shape.name, k, machines, status,
        minutes if status == "ok" else None, peak,
    )


def estimate_parkway_like(
    shape: GraphShape, k: int, cluster: ClusterSpec
) -> RunEstimate:
    """Model a Parkway-class run: per-vertex coordinator bottleneck."""
    machines = cluster.num_workers
    edges = float(shape.num_edges)
    coordinator_mem = _PARKWAY_COORDINATOR_BYTES_PER_VERTEX * float(shape.num_vertices)
    peak = _PARKWAY_BYTES_PER_PIN * edges / machines + coordinator_mem
    if peak > cluster.machine.memory_bytes:
        return RunEstimate("Parkway", shape.name, k, machines, "oom", None, peak)
    minutes = (
        _PARKWAY_MINUTES_PER_PIN_LEVEL
        * edges
        * np.log2(max(2.0, shape.num_data))
        / machines
    )
    status = "timeout" if minutes > TEN_HOURS_MINUTES else "ok"
    return RunEstimate(
        "Parkway", shape.name, k, machines, status,
        minutes if status == "ok" else None, peak,
    )


# ----------------------------------------------------------------------
# Calibration from live engine runs
# ----------------------------------------------------------------------
def calibrate_cost_model(
    runs: list[tuple[JobMetrics, float]], base: CostModel | None = None
) -> CostModel:
    """Re-fit CostModel's linear constants from measured engine runs.

    ``runs`` pairs each job's metrics with its observed wall seconds.  A
    non-negative least squares over (ops, messages, bytes, barriers) yields
    the per-unit costs; barrier time is fixed from the base model to keep
    the fit well-conditioned on small samples.
    """
    base = base or CostModel()
    if not runs:
        return base
    rows = []
    targets = []
    for metrics, wall in runs:
        ops = sum(float(s.ops_per_worker.max()) for s in metrics.supersteps if s.ops_per_worker.size)
        msgs = sum(float(s.messages_per_worker.max()) for s in metrics.supersteps if s.messages_per_worker.size)
        byts = sum(
            float(s.remote_bytes_per_worker.max())
            for s in metrics.supersteps
            if s.remote_bytes_per_worker.size
        )
        barrier_time = base.barrier_sec * metrics.num_supersteps
        rows.append([ops, msgs, byts])
        targets.append(max(0.0, wall - barrier_time))
    matrix = np.asarray(rows, dtype=np.float64)
    vector = np.asarray(targets, dtype=np.float64)
    scale = matrix.max(axis=0)
    scale[scale == 0] = 1.0
    solution, *_ = np.linalg.lstsq(matrix / scale, vector, rcond=None)
    solution = np.maximum(solution / scale, 0.0)
    sec_per_op = float(solution[0]) or base.sec_per_op
    sec_per_message = float(solution[1]) or base.sec_per_message
    inv_bw = float(solution[2])
    bytes_per_sec = 1.0 / inv_bw if inv_bw > 0 else base.bytes_per_sec
    return CostModel(
        sec_per_op=sec_per_op,
        sec_per_message=sec_per_message,
        bytes_per_sec=bytes_per_sec,
        barrier_sec=base.barrier_sec,
    )
