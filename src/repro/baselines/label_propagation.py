"""Balanced label propagation baseline.

A classic lightweight heuristic (used e.g. inside the Social Hash framework
[29] for graph — not hypergraph — assignment): every vertex repeatedly
adopts the bucket where most of its co-accessed peers live, subject to
capacity.  Unlike SHP there is no pairing — moves are applied greedily
best-gain-first until each destination bucket fills up — so balance comes
from hard capacity checks rather than matched swaps.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.gains import best_moves
from ..core.partition import balanced_random_assignment, bucket_sizes, capacities
from ..core.result import IterationStats, PartitionResult
from ..hypergraph.bipartite import BipartiteGraph
from ..objectives import CliqueNetObjective, bucket_counts

__all__ = ["label_propagation_partitioner"]


def label_propagation_partitioner(
    graph: BipartiteGraph,
    k: int,
    epsilon: float = 0.05,
    max_iterations: int = 20,
    seed: int = 0,
    **_: object,
) -> PartitionResult:
    """Greedy capacity-constrained label propagation on co-access counts."""
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    assignment = balanced_random_assignment(graph.num_data, k, rng)
    caps = capacities(graph.num_data, k, epsilon)
    objective = CliqueNetObjective()
    history: list[IterationStats] = []

    for iteration in range(1, max_iterations + 1):
        counts = bucket_counts(graph, assignment, k)
        gain, target = best_moves(graph, assignment, counts, objective)
        candidates = np.flatnonzero(gain > 0)
        if candidates.size == 0:
            history.append(IterationStats(iteration, 0, 0.0))
            break
        order = candidates[np.argsort(-gain[candidates], kind="stable")]
        sizes = bucket_sizes(assignment, k)
        moved = 0
        for v in order.tolist():
            dst = int(target[v])
            src = int(assignment[v])
            if sizes[dst] + 1 > caps[dst]:
                continue
            sizes[dst] += 1
            sizes[src] -= 1
            assignment[v] = dst
            moved += 1
        history.append(
            IterationStats(iteration, moved, moved / max(1, graph.num_data))
        )
        if moved / max(1, graph.num_data) < 0.001:
            break
    return PartitionResult(
        assignment=assignment,
        k=k,
        method="label-prop",
        converged=True,
        elapsed_sec=time.perf_counter() - start,
        history=history,
    )
