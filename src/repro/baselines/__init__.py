"""Baseline partitioners and the Table 3 resource model.

The registry exposes every partitioner behind one calling convention::

    result = get_partitioner("mondriaan-like")(graph, k=32, epsilon=0.05, seed=1)

Names mirror the paper's comparison set; ``*-like`` marks our
implementations of the closed tools' algorithm families (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Callable

from ..api.registry import PARTITIONERS
from ..core.result import PartitionResult
from ..core.shp_2 import shp_2
from ..core.shp_k import shp_k
from ..hypergraph.bipartite import BipartiteGraph
from .label_propagation import label_propagation_partitioner
from .multilevel import MultilevelPartitioner, multilevel_partition
from .parkway_like import CoordinatorProfile, ParkwayLikePartitioner
from .resource_model import (
    GraphShape,
    RunEstimate,
    TEN_HOURS_MINUTES,
    calibrate_cost_model,
    estimate_parkway_like,
    estimate_shp,
    estimate_zoltan_like,
    expected_random_fanout,
)
from .simple import hash_partitioner, random_partitioner
from .spectral import spectral_partitioner
from .streaming import streaming_partitioner

__all__ = [
    "get_partitioner",
    "partitioner_names",
    "random_partitioner",
    "hash_partitioner",
    "streaming_partitioner",
    "label_propagation_partitioner",
    "MultilevelPartitioner",
    "multilevel_partition",
    "ParkwayLikePartitioner",
    "CoordinatorProfile",
    "spectral_partitioner",
    "GraphShape",
    "RunEstimate",
    "TEN_HOURS_MINUTES",
    "estimate_shp",
    "estimate_zoltan_like",
    "estimate_parkway_like",
    "expected_random_fanout",
    "calibrate_cost_model",
]

Partitioner = Callable[..., PartitionResult]

# Registration order is comparison-table order.  ``accepts`` names the
# algorithm knobs beyond (k, epsilon, seed) the entry understands — the
# runner routes JobSpec fields by this metadata instead of name checks —
# and ``engine_mode`` marks entries runnable on the vertex-centric engine.
PARTITIONERS.register("random")(random_partitioner)
PARTITIONERS.register("hash")(hash_partitioner)
PARTITIONERS.register("label-prop")(label_propagation_partitioner)
# Single-pass out-of-core warm start (HYPE-style neighborhood expansion);
# the first stage of the stream-then-refine pipeline.
PARTITIONERS.register("streaming")(streaming_partitioner)


@PARTITIONERS.register("shp-k", accepts=("p", "objective"), engine_mode="k")
def _shp_k(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **kw):
    return shp_k(graph, k, epsilon=epsilon, seed=seed, **kw)


@PARTITIONERS.register(
    "shp-2",
    accepts=("p", "objective", "level_mode", "refine_workers"),
    engine_mode="2",
)
def _shp_2(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **kw):
    return shp_2(graph, k, epsilon=epsilon, seed=seed, **kw)


def _multilevel(style: str):
    def run(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **_):
        return multilevel_partition(graph, k, epsilon=epsilon, seed=seed, style=style)

    return run


PARTITIONERS.register("mondriaan-like")(_multilevel("mondriaan"))
PARTITIONERS.register("zoltan-like")(_multilevel("zoltan"))


@PARTITIONERS.register("parkway-like")
def _parkway(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **_):
    return ParkwayLikePartitioner(k=k, epsilon=epsilon, seed=seed).partition(graph)


PARTITIONERS.register("spectral")(spectral_partitioner)


def partitioner_names() -> list[str]:
    """All registry names, in comparison-table order."""
    return PARTITIONERS.names()


def get_partitioner(name: str) -> Partitioner:
    """Look up a partitioner by registry name."""
    return PARTITIONERS.get(name)
