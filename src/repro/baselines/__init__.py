"""Baseline partitioners and the Table 3 resource model.

The registry exposes every partitioner behind one calling convention::

    result = get_partitioner("mondriaan-like")(graph, k=32, epsilon=0.05, seed=1)

Names mirror the paper's comparison set; ``*-like`` marks our
implementations of the closed tools' algorithm families (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Callable

from ..core.result import PartitionResult
from ..core.shp_2 import shp_2
from ..core.shp_k import shp_k
from ..hypergraph.bipartite import BipartiteGraph
from .label_propagation import label_propagation_partitioner
from .multilevel import MultilevelPartitioner, multilevel_partition
from .parkway_like import CoordinatorProfile, ParkwayLikePartitioner
from .resource_model import (
    GraphShape,
    RunEstimate,
    TEN_HOURS_MINUTES,
    calibrate_cost_model,
    estimate_parkway_like,
    estimate_shp,
    estimate_zoltan_like,
    expected_random_fanout,
)
from .simple import hash_partitioner, random_partitioner
from .spectral import spectral_partitioner

__all__ = [
    "get_partitioner",
    "partitioner_names",
    "random_partitioner",
    "hash_partitioner",
    "label_propagation_partitioner",
    "MultilevelPartitioner",
    "multilevel_partition",
    "ParkwayLikePartitioner",
    "CoordinatorProfile",
    "spectral_partitioner",
    "GraphShape",
    "RunEstimate",
    "TEN_HOURS_MINUTES",
    "estimate_shp",
    "estimate_zoltan_like",
    "estimate_parkway_like",
    "expected_random_fanout",
    "calibrate_cost_model",
]

Partitioner = Callable[..., PartitionResult]


def _shp_k(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **kw):
    return shp_k(graph, k, epsilon=epsilon, seed=seed, **kw)


def _shp_2(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **kw):
    return shp_2(graph, k, epsilon=epsilon, seed=seed, **kw)


def _multilevel(style: str):
    def run(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **_):
        return multilevel_partition(graph, k, epsilon=epsilon, seed=seed, style=style)

    return run


def _parkway(graph: BipartiteGraph, k: int, epsilon: float = 0.05, seed: int = 0, **_):
    return ParkwayLikePartitioner(k=k, epsilon=epsilon, seed=seed).partition(graph)


_REGISTRY: dict[str, Partitioner] = {
    "random": random_partitioner,
    "hash": hash_partitioner,
    "label-prop": label_propagation_partitioner,
    "shp-k": _shp_k,
    "shp-2": _shp_2,
    "mondriaan-like": _multilevel("mondriaan"),
    "zoltan-like": _multilevel("zoltan"),
    "parkway-like": _parkway,
    "spectral": spectral_partitioner,
}


def partitioner_names() -> list[str]:
    """All registry names, in comparison-table order."""
    return list(_REGISTRY)


def get_partitioner(name: str) -> Partitioner:
    """Look up a partitioner by registry name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown partitioner {name!r}; known: {', '.join(_REGISTRY)}")
    return _REGISTRY[key]
