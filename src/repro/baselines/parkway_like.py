"""Parkway-like parallel multi-level partitioner with a coordinator.

Parkway [31] parallelizes the multi-level V-cycle but routes every
refinement decision through "a single coordinator to approve vertex swaps
while retaining balance.  This coordinator holds the concrete lists of
vertices and their desired movements, which leads to yet another single
machine bottleneck" (Section 2).

We reproduce the algorithm family with the same V-cycle as
:mod:`repro.baselines.multilevel` distributed over simulated workers, and —
crucially for Table 3 — we *account* the coordinator's load: per refinement
round it materializes one entry per candidate move, so its peak memory is
Θ(|D|) regardless of worker count.  The resource model uses this profile to
reproduce Parkway's out-of-memory failures on the large hypergraphs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.result import PartitionResult
from ..hypergraph.bipartite import BipartiteGraph
from .multilevel import MultilevelPartitioner

__all__ = ["CoordinatorProfile", "ParkwayLikePartitioner"]

_BYTES_PER_MOVE_ENTRY = 24  # vertex id + target + gain on the coordinator
_BYTES_PER_PIN = 16  # coarsest-graph pin storage (id + hyperedge ref)


@dataclass
class CoordinatorProfile:
    """Resource profile of the coordinator machine."""

    peak_move_entries: int = 0
    peak_coarse_pins: int = 0
    rounds: int = 0

    @property
    def peak_bytes(self) -> int:
        return (
            self.peak_move_entries * _BYTES_PER_MOVE_ENTRY
            + self.peak_coarse_pins * _BYTES_PER_PIN
        )


@dataclass
class ParkwayLikePartitioner:
    """Parallel multi-level partitioner with coordinator accounting."""

    k: int
    epsilon: float = 0.05
    seed: int = 0
    num_workers: int = 4
    profile: CoordinatorProfile = field(default_factory=CoordinatorProfile)

    def partition(self, graph: BipartiteGraph) -> PartitionResult:
        start = time.perf_counter()
        # The algorithmic result matches the serial V-cycle with the
        # parallel-friendly preset; the coordinator bottleneck is what
        # distinguishes Parkway operationally, and that is what we meter.
        inner = MultilevelPartitioner(
            k=self.k, epsilon=self.epsilon, seed=self.seed, style="parkway"
        )
        result = inner.partition(graph)

        # Coordinator accounting: every refinement round ships each data
        # vertex's candidate move to the coordinator; the coarsest hypergraph
        # is also gathered there before initial partitioning.
        self.profile.rounds = max(1, int(np.ceil(np.log2(max(2, self.k)))))
        self.profile.peak_move_entries = graph.num_data
        self.profile.peak_coarse_pins = int(0.25 * graph.num_edges)

        result.method = "parkway-like"
        result.elapsed_sec = time.perf_counter() - start
        result.extra["coordinator_peak_bytes"] = self.profile.peak_bytes
        result.extra["num_workers"] = self.num_workers
        return result
