"""Spectral bisection baseline.

Computes the Fiedler vector of the *star expansion* of the hypergraph —
the bipartite graph itself, where every query is an auxiliary vertex — and
splits the data vertices at the weighted median.  Recursion yields k-way
partitions.  Spectral methods are the classical non-local-search contrast
point (the approximation algorithms the paper cites are LP/SDP-based and
slower still); this baseline is only practical for small graphs, which is
itself a datapoint the benchmarks report.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from ..core.partition import balanced_random_assignment
from ..core.result import PartitionResult
from ..hypergraph.bipartite import BipartiteGraph

__all__ = ["spectral_partitioner"]


def _fiedler_split(
    graph: BipartiteGraph, data_ids: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Bisect a data subset by the Fiedler vector of the star expansion."""
    subgraph, _ = graph.induced_subgraph(data_ids)
    nd, nq = subgraph.num_data, subgraph.num_queries
    if nd <= 2 or nq == 0:
        return balanced_random_assignment(nd, 2, rng)
    rows = subgraph.d_of_edge
    cols = subgraph.d_indices + nd  # queries appended after data vertices
    n = nd + nq
    data = np.ones(rows.size, dtype=np.float64)
    adjacency = sparse.coo_matrix(
        (np.concatenate([data, data]),
         (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(n, n),
    ).tocsr()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    laplacian = sparse.diags(degrees) - adjacency
    try:
        # Shift by a small multiple of identity for numerical robustness.
        _, vectors = eigsh(
            laplacian + 1e-9 * sparse.identity(n),
            k=2,
            which="SM",
            maxiter=max(200, 20 * int(np.sqrt(n))),
            tol=1e-4,
        )
        fiedler = vectors[:, 1][:nd]
    except Exception:  # convergence failure: fall back to random
        return balanced_random_assignment(nd, 2, rng)
    median = np.median(fiedler)
    side = (fiedler > median).astype(np.int32)
    # Median ties can unbalance the split; fix up deterministically.
    imbalance = int(side.sum()) - nd // 2
    if imbalance > 0:
        ties = np.flatnonzero((fiedler == median) & (side == 1))[:imbalance]
        side[ties] = 0
    return side


def spectral_partitioner(
    graph: BipartiteGraph, k: int, seed: int = 0, **_: object
) -> PartitionResult:
    """Recursive spectral bisection into k buckets."""
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    assignment = np.zeros(graph.num_data, dtype=np.int32)
    stack = [(np.arange(graph.num_data, dtype=np.int64), 0, k)]
    while stack:
        data_ids, offset, span = stack.pop()
        if span == 1 or data_ids.size == 0:
            assignment[data_ids] = offset
            continue
        left_span = (span + 1) // 2
        side = _fiedler_split(graph, data_ids, rng)
        stack.append((data_ids[side == 0], offset, left_span))
        stack.append((data_ids[side == 1], offset + left_span, span - left_span))
    return PartitionResult(
        assignment=assignment,
        k=k,
        method="spectral",
        converged=True,
        elapsed_sec=time.perf_counter() - start,
    )
