"""Figure 7: optimization progress for p = 0.5 vs p = 1.0 (SHP-k, k = 8).

On the soc-LJ stand-in, tracks average fanout and the percentage of moved
vertices per refinement iteration.  The paper's finding: with p = 1 the
local search freezes early (few moves, higher final fanout); with p = 0.5
movement persists and fanout keeps improving — the number of moved
vertices falls below 0.1 % only after ~35 iterations.
"""

from __future__ import annotations

from conftest import bench_dataset, smoke_mode

from repro import SHPConfig, SHPKPartitioner
from repro.bench import format_series, record

ITERATIONS = 45


def _run(p: float):
    graph = bench_dataset("soc-LJ")
    if p >= 1.0:
        config = SHPConfig(
            k=8, objective="fanout", seed=7, max_iterations=ITERATIONS,
            track_metrics="full", convergence_fraction=0.0,
        )
    else:
        config = SHPConfig(
            k=8, p=p, seed=7, max_iterations=ITERATIONS,
            track_metrics="full", convergence_fraction=0.0,
        )
    result = SHPKPartitioner(config).partition(graph)
    fanouts = [round(s.fanout, 3) for s in result.history]
    moved = [round(100.0 * s.moved_fraction, 2) for s in result.history]
    return fanouts, moved


def test_fig7_convergence(benchmark):
    f_half, m_half = benchmark.pedantic(_run, args=(0.5,), rounds=1, iterations=1)
    f_one, m_one = _run(1.0)
    iterations = list(range(1, len(f_half) + 1))
    text = format_series(
        "iter",
        iterations,
        {
            "fanout p=0.5": f_half,
            "fanout p=1.0": f_one + [""] * (len(f_half) - len(f_one)),
            "moved% p=0.5": m_half,
            "moved% p=1.0": m_one + [""] * (len(m_half) - len(m_one)),
        },
        title="Figure 7 — SHP-k progress on soc-LJ stand-in (k=8)",
    )
    record(
        "fig7_convergence", text,
        data={"fanout_p05": f_half, "fanout_p10": f_one,
              "moved_p05": m_half, "moved_p10": m_one},
    )

    assert f_half[-1] < f_half[0]  # monotone-ish improvement overall
    if smoke_mode():
        return  # local-minimum shape needs bench-scale graphs
    # Paper's qualitative claims: direct fanout optimization lands in a
    # local minimum — movement freezes while the result is worse.
    assert f_half[-1] < f_one[-1]  # p=0.5 reaches lower fanout
    late = slice(20, None)
    assert sum(m_one[late]) < sum(m_half[late])  # p=1 frozen, p=0.5 moving
