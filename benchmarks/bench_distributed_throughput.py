"""Distributed SHP vertex execution: columnar vs per-vertex dict path.

The columnar mode runs each of the four protocol phases as vectorized
kernels over struct-of-arrays worker partitions, exchanging typed numpy
message batches; the dict mode is the per-vertex reference implementation.
Both are bitwise-identical per seed (tests/test_vertex_mode_parity.py pins
the full backend × mode grid), so this bench measures pure execution-layer
throughput on the simulated backend at |D| = 10⁵ (full scale) and asserts:

* assignments bitwise equal and per-superstep message/byte meters identical
  — the fast path changes *nothing* observable;
* ≥ 5× columnar-over-dict wall-clock speedup at full scale, for both mode
  "2" (level-synchronous bisection) and mode "k" (direct k-way).

A second table measures the net-delta combiner on the rpc backend (real
sockets — the only backend where ``wire_bytes`` is physical): the same
job with ``combiner`` toggled must produce a bitwise-identical assignment
with combiner-on wire bytes *strictly below* combiner-off, and the
logical remote-byte meter dropping in step.  Checkpoint traffic is
identical between the two runs (same states every superstep), so the
wire delta is pure message savings.

Smoke mode shrinks the graphs ~20× and only checks parity / the byte
orderings end to end — timings there are fixed overhead, not meaningful.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import smoke_mode

from repro import SHPConfig
from repro.bench import format_table, record
from repro.distributed import ClusterSpec, RpcBackend
from repro.distributed_shp import DistributedSHP
from repro.hypergraph import community_bipartite

SPEEDUP_FLOOR = 5.0
WORKERS = 4


def _meters_identical(a, b) -> bool:
    if len(a.supersteps) != len(b.supersteps):
        return False
    for sa, sb in zip(a.supersteps, b.supersteps):
        if (
            sa.phase != sb.phase
            or sa.messages_local != sb.messages_local
            or sa.messages_remote != sb.messages_remote
            or sa.bytes_local != sb.bytes_local
            or sa.bytes_remote != sb.bytes_remote
            or not np.array_equal(sa.messages_per_worker, sb.messages_per_worker)
            or not np.array_equal(
                sa.remote_bytes_per_worker, sb.remote_bytes_per_worker
            )
        ):
            return False
    return True


def _run_throughput():
    if smoke_mode():
        num_queries, num_data, num_edges = 3_000, 5_000, 25_000
    else:
        num_queries, num_data, num_edges = 60_000, 100_000, 500_000
    graph = community_bipartite(
        num_queries, num_data, num_edges, num_communities=64, mixing=0.2, seed=7
    )
    rows = []
    for mode, k in (("2", 2), ("k", 4)):
        config = SHPConfig(
            k=k, seed=3, iterations_per_bisection=2, max_iterations=2,
            swap_mode="bernoulli",
        )
        timings = {}
        runs = {}
        for vertex_mode in ("dict", "columnar"):
            start = time.perf_counter()
            runs[vertex_mode] = DistributedSHP(
                config,
                cluster=ClusterSpec(num_workers=WORKERS),
                mode=mode,
                backend="sim",
                vertex_mode=vertex_mode,
            ).run(graph)
            timings[vertex_mode] = time.perf_counter() - start
        parity = np.array_equal(
            runs["dict"].assignment, runs["columnar"].assignment
        )
        meters = _meters_identical(runs["dict"].metrics, runs["columnar"].metrics)
        speedup = timings["dict"] / timings["columnar"]
        rows.append(
            {
                "mode": mode,
                "k": k,
                "|D|": graph.num_data,
                "|E|": graph.num_edges,
                "supersteps": runs["columnar"].supersteps,
                "dict sec": round(timings["dict"], 2),
                "columnar sec": round(timings["columnar"], 2),
                "speedup": round(speedup, 1),
                "bitwise": parity,
                "meters equal": meters,
                "_speedup": speedup,
                "_parity": parity and meters,
            }
        )
    return rows


def _run_combiner_wire():
    """Combiner on vs off on the rpc backend: same answer, fewer bytes."""
    if smoke_mode():
        num_queries, num_data, num_edges = 2_000, 3_000, 16_000
    else:
        num_queries, num_data, num_edges = 12_000, 20_000, 110_000
    graph = community_bipartite(
        num_queries, num_data, num_edges, num_communities=16, mixing=0.2, seed=7
    )
    config = SHPConfig(
        k=4, seed=3, iterations_per_bisection=2, max_iterations=2,
        swap_mode="bernoulli",
    )
    runs = {}
    rows = []
    for combiner in (False, True):
        backend = RpcBackend(step_timeout=120.0)
        start = time.perf_counter()
        runs[combiner] = DistributedSHP(
            config,
            cluster=ClusterSpec(num_workers=WORKERS),
            mode="2",
            backend=backend,
            vertex_mode="columnar",
            combiner=combiner,
        ).run(graph)
        elapsed = time.perf_counter() - start
        metrics = runs[combiner].metrics
        rows.append(
            {
                "combiner": "on" if combiner else "off",
                "|D|": graph.num_data,
                "messages": metrics.total_messages,
                "bytes_remote": sum(s.bytes_remote for s in metrics.supersteps),
                "wire_bytes": metrics.total_wire_bytes,
                "round_trip_sec": round(metrics.total_round_trip_seconds, 2),
                "wall sec": round(elapsed, 2),
            }
        )
    off, on = rows[0], rows[1]
    parity = np.array_equal(runs[False].assignment, runs[True].assignment)
    for row in rows:
        row["bitwise"] = parity
        row["_parity"] = parity
    off["_wire_saved"] = on["_wire_saved"] = off["wire_bytes"] - on["wire_bytes"]
    off["_logical_saved"] = on["_logical_saved"] = (
        off["bytes_remote"] - on["bytes_remote"]
    )
    return rows


def test_combiner_wire_savings(benchmark):
    rows = benchmark.pedantic(_run_combiner_wire, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    record(
        "combiner_wire_savings",
        format_table(
            display,
            title="Net-delta combiner on the rpc backend: wire bytes on vs off",
        ),
        data={"rows": display},
    )
    off, on = rows[0], rows[1]
    assert off["_parity"], "combiner changed the assignment"
    # The acceptance criterion: combiner-on wire bytes strictly below
    # combiner-off on the same job, with the logical meter agreeing.
    assert on["wire_bytes"] < off["wire_bytes"], (
        f"wire bytes {on['wire_bytes']} !< {off['wire_bytes']}"
    )
    assert on["bytes_remote"] < off["bytes_remote"]
    assert on["messages"] < off["messages"]


def test_distributed_throughput(benchmark):
    rows = benchmark.pedantic(_run_throughput, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    record(
        "distributed_throughput",
        format_table(
            display,
            title="Distributed SHP throughput: columnar vs dict vertex mode (sim backend)",
        ),
        data={"rows": display},
    )
    # The fast path must be invisible: bitwise assignments, identical meters.
    for row in rows:
        assert row["_parity"], f"mode {row['mode']}: columnar diverged from dict"
    if smoke_mode():
        return  # tiny graphs: timings are fixed overhead, not meaningful
    for row in rows:
        assert row["_speedup"] >= SPEEDUP_FLOOR, (
            f"mode {row['mode']}: {row['_speedup']:.1f}x < {SPEEDUP_FLOOR}x"
        )
