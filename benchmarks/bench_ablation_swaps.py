"""Ablation A1: swap-matching design choices (Section 3.4).

Compares the Algorithm-1 uniform matcher against the advanced histogram
matcher, with and without negative-gain bin pairing, and strict vs
bernoulli execution.  The histogram matcher's claimed advantages: it moves
the most important gains first and frees additional movement by pairing
positive with negative bins.
"""

from __future__ import annotations

import time

from conftest import bench_dataset

from repro import SHPConfig, SHPKPartitioner
from repro.bench import format_table, record
from repro.objectives import average_fanout, imbalance

VARIANTS = [
    ("histogram + negatives (default)", {"matcher": "histogram", "allow_negative_gains": True}),
    ("histogram, no negatives", {"matcher": "histogram", "allow_negative_gains": False}),
    ("uniform (Algorithm 1)", {"matcher": "uniform"}),
    ("histogram, bernoulli", {"matcher": "histogram", "swap_mode": "bernoulli"}),
]


def _run():
    graph = bench_dataset("email-Enron")
    rows = []
    for label, overrides in VARIANTS:
        config = SHPConfig(k=32, seed=23, **overrides)
        start = time.perf_counter()
        result = SHPKPartitioner(config).partition(graph)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "variant": label,
                "fanout": round(average_fanout(graph, result.assignment, 32), 3),
                "imbalance": round(imbalance(result.assignment, 32), 4),
                "iterations": result.num_iterations,
                "sec": round(elapsed, 2),
            }
        )
    return rows


def test_ablation_swap_matching(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title="Ablation A1 — swap matcher variants (SHP-k, k=32)")
    record("ablation_swaps", text, data=rows)

    by_label = {row["variant"]: row for row in rows}
    default = by_label["histogram + negatives (default)"]
    uniform = by_label["uniform (Algorithm 1)"]
    # The advanced matcher is at least as good as plain Algorithm 1.
    assert default["fanout"] <= uniform["fanout"] * 1.05
    # Strict variants respect ε exactly.
    for label in ("histogram + negatives (default)", "histogram, no negatives",
                  "uniform (Algorithm 1)"):
        assert by_label[label]["imbalance"] <= 0.05 + 1e-9
