"""SHP-2 level execution: fused vs per-group loop.

The level-fused engine refines every bisection of a recursion level in one
vectorized pass (composite (group, side) labels, cached gains, one grouped
matcher invocation) instead of materializing one ``induced_subgraph`` and
one refinement loop per group.  This bench partitions an identical
Darwini-style workload (|D| = 2·10⁵ at full scale) with both
``level_mode`` settings and reports wall-clock speedup and final-fanout
parity at two iteration budgets:

* ``shallow`` — the paper's SHP-2 default of 20 iterations per bisection;
  every iteration still moves a sizable fraction of vertices, so both
  paths do comparable algorithmic work and the fused win comes from the
  eliminated per-group subgraph copies and Python/scipy overheads.
* ``converge`` — a 60-iteration budget (SHP-k's default), approximating
  run-to-convergence.  The per-group loop recomputes full gains every
  iteration, while the fused engine's dirty-neighborhood gain cache makes
  late, low-movement iterations nearly free — this is where the ISSUE 3
  acceptance bar (≥ 3× at k ≥ 64) is pinned.

Fanout parity (≤ 1% difference) is asserted on every row; the RNG streams
differ per mode (one per level vs one per group), so assignments agree
statistically, not bitwise — see tests/test_level_fuse.py.

A second bench pits the serial fused path against shared-memory parallel
refinement (``refine_workers``, see repro.core.parallel_refine): here the
contract is the strict one — assignments must be **bitwise identical** (the
deterministic ascending-block merge), asserted at every scale including
smoke, with the ≥ 2× elapsed floor at 4 workers pinned at full scale only
(smoke graphs are pure fixed overhead, and CI boxes may not have 4 cores).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import smoke_mode

from repro import shp_2
from repro.bench import format_table, record
from repro.hypergraph import darwini_bipartite
from repro.objectives import average_fanout, imbalance

#: (budget label, iterations per bisection, asserted minimum speedup at full
#: scale for k >= SPEEDUP_K_FLOOR).
BUDGETS = (("shallow", 20, 1.4), ("converge", 60, 3.0))
SPEEDUP_K_FLOOR = 64
FANOUT_TOLERANCE = 0.01
EPSILON = 0.05
#: Asserted minimum parallel-over-serial speedup at 4 workers, full scale.
PARALLEL_WORKERS = 4
PARALLEL_SPEEDUP_FLOOR = 2.0
PARALLEL_ITERATIONS = 60


def _run_levels():
    num_users = 4000 if smoke_mode() else 200_000
    ks = (8,) if smoke_mode() else (16, 64, 128)
    graph = darwini_bipartite(num_users, avg_degree=12, clustering=0.4, seed=41)
    rows = []
    for label, iterations, _ in BUDGETS:
        for k in ks:
            timings = {}
            fanouts = {}
            for mode in ("loop", "fused"):
                start = time.perf_counter()
                result = shp_2(
                    graph, k, seed=42, epsilon=EPSILON, level_mode=mode,
                    iterations_per_bisection=iterations,
                )
                timings[mode] = time.perf_counter() - start
                fanouts[mode] = average_fanout(graph, result.assignment, k)
                assert imbalance(result.assignment, k) <= EPSILON + 1e-9
            speedup = timings["loop"] / timings["fused"]
            delta = abs(fanouts["fused"] - fanouts["loop"]) / fanouts["loop"]
            rows.append(
                {
                    "budget": label,
                    "iters": iterations,
                    "k": k,
                    "|D|": graph.num_data,
                    "loop sec": round(timings["loop"], 2),
                    "fused sec": round(timings["fused"], 2),
                    "speedup": round(speedup, 2),
                    "loop fanout": round(fanouts["loop"], 4),
                    "fused fanout": round(fanouts["fused"], 4),
                    "delta %": round(100 * delta, 2),
                    "_speedup": speedup,
                    "_delta": delta,
                }
            )
    return rows


def _run_parallel():
    num_users = 4000 if smoke_mode() else 200_000
    ks = (8,) if smoke_mode() else (64, 128)
    graph = darwini_bipartite(num_users, avg_degree=12, clustering=0.4, seed=41)
    rows = []
    for k in ks:
        timings = {}
        assignments = {}
        for workers in (1, PARALLEL_WORKERS):
            start = time.perf_counter()
            result = shp_2(
                graph, k, seed=42, epsilon=EPSILON, level_mode="fused",
                iterations_per_bisection=PARALLEL_ITERATIONS,
                refine_workers=workers,
            )
            timings[workers] = time.perf_counter() - start
            assignments[workers] = result.assignment
        # The deterministic-merge contract: bitwise equality at every
        # scale, smoke included — parallelism never touches the bits.
        bitwise = np.array_equal(
            assignments[1], assignments[PARALLEL_WORKERS]
        )
        assert bitwise, f"parallel refinement diverged from serial at k={k}"
        speedup = timings[1] / timings[PARALLEL_WORKERS]
        rows.append(
            {
                "k": k,
                "|D|": graph.num_data,
                "workers": PARALLEL_WORKERS,
                "serial sec": round(timings[1], 2),
                "parallel sec": round(timings[PARALLEL_WORKERS], 2),
                "speedup": round(speedup, 2),
                "bitwise": "yes" if bitwise else "NO",
                "_speedup": speedup,
            }
        )
    return rows


def test_shp2_parallel_refinement(benchmark):
    rows = benchmark.pedantic(_run_parallel, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    record(
        "shp2_parallel_refine",
        format_table(
            display,
            title="SHP-2 fused refinement: serial vs shared-memory parallel",
        ),
        data={"rows": display},
    )
    if smoke_mode():
        return  # tiny graphs: pool spawn dominates, timings not meaningful
    for row in rows:
        assert row["_speedup"] >= PARALLEL_SPEEDUP_FLOOR, (
            f"k={row['k']}: {row['_speedup']:.2f}x < "
            f"{PARALLEL_SPEEDUP_FLOOR}x at {PARALLEL_WORKERS} workers"
        )


def test_sanitizer_instrumentation_compiled_out():
    """The reprosan overhead guard: sanitizer-off runs carry zero probes.

    The runtime sanitizer's hot-path hooks are a single ``current() is
    None`` branch; everything else — bounds validation, worker echoes,
    barrier interval checks — must be unreachable when it is off.  The
    probe counters make that checkable: a sanitizer-off parallel run may
    not advance them at all.  The sanitized re-run then proves the guard
    is not vacuous (dispatches really crossed the pool) and that
    instrumentation never changes the bits.
    """
    from repro.analysis import sanitizers

    graph = darwini_bipartite(4000, avg_degree=12, clustering=0.4, seed=41)
    assert sanitizers.current() is None, "REPRO_SAN leaked into the bench env"
    before = sanitizers.probe_counts()
    off = shp_2(
        graph, 8, seed=42, epsilon=EPSILON, level_mode="fused",
        iterations_per_bisection=20, refine_workers=2,
    )
    assert sanitizers.probe_counts() == before, (
        "sanitizer-off run advanced instrumentation probes: the default "
        "path is no longer zero-overhead"
    )
    with sanitizers.sanitized(strict=True):
        on = shp_2(
            graph, 8, seed=42, epsilon=EPSILON, level_mode="fused",
            iterations_per_bisection=20, refine_workers=2,
        )
    advanced = sanitizers.probe_counts()["gain_dispatch"]
    assert advanced > before["gain_dispatch"], (
        "overhead guard is vacuous: no gain dispatch crossed the pool"
    )
    assert np.array_equal(off.assignment, on.assignment), (
        "sanitizer instrumentation changed the bits"
    )


def test_shp2_level_fusion(benchmark):
    rows = benchmark.pedantic(_run_levels, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    record(
        "shp2_levels",
        format_table(display, title="SHP-2 level fusion: fused vs per-group loop"),
        data={"rows": display},
    )

    # Quality parity holds at every scale and budget.
    for row in rows:
        assert row["_delta"] <= (0.25 if smoke_mode() else FANOUT_TOLERANCE)
    if smoke_mode():
        return  # tiny graphs: timings are all fixed overhead, not meaningful
    for (label, _, floor) in BUDGETS:
        for row in rows:
            if row["budget"] == label and row["k"] >= SPEEDUP_K_FLOOR:
                assert row["_speedup"] >= floor, (
                    f"{label} budget at k={row['k']}: "
                    f"{row['_speedup']:.2f}x < {floor}x"
                )
