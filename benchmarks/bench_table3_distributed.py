"""Table 3: run-time of distributed partitioners on 4 machines.

Two layers (DESIGN.md Section 5):

1. **Live layer** — the real 4-superstep protocol executes on the simulated
   4-worker Giraph cluster for the scaled stand-ins, producing measured
   message/byte/memory metrics; the cost model converts them to modeled
   minutes and is re-calibratable from these runs.
2. **Paper-scale layer** — the resource model evaluates every (tool, graph,
   k) cell of Table 3 at the *published* sizes, reproducing the failure
   pattern: Zoltan OOMs beyond soc-LJ, Parkway only runs FB-50M, SHP-k
   times out for large k on the billion-edge graphs, and SHP-2 is the only
   tool that completes everywhere.
"""

from __future__ import annotations

from conftest import bench_dataset, smoke_mode

from repro import SHPConfig
from repro.bench import format_table, record
from repro.baselines import (
    GraphShape,
    estimate_parkway_like,
    estimate_shp,
    estimate_zoltan_like,
)
from repro.distributed import ClusterSpec, CostModel
from repro.distributed_shp import DistributedSHP
from repro.hypergraph import DATASETS
from repro.objectives import average_fanout

TABLE3_DATASETS = ["soc-Pokec", "soc-LJ", "FB-50M", "FB-2B", "FB-5B", "FB-10B"]
K_VALUES = [32, 512, 8192]

#: Paper's published Table 3 cells (minutes; None = failed / > 10 h).
PAPER_MINUTES = {
    ("soc-Pokec", "SHP-2"): {32: 1.8, 512: 2.3, 8192: 4.5},
    ("soc-Pokec", "SHP-k"): {32: 2.6, 512: 8.8, 8192: 34.6},
    ("soc-Pokec", "Zoltan"): {32: 42.7, 512: 43.4, 8192: 42.6},
    ("soc-LJ", "SHP-2"): {32: 2.4, 512: 3.7, 8192: 6.6},
    ("FB-50M", "Parkway"): {32: 11.2, 512: 9.21},
    ("FB-2B", "SHP-2"): {32: 17.0, 512: 39.8, 8192: 55.6},
    ("FB-2B", "SHP-k"): {32: 128.0, 512: 479.0},
    ("FB-10B", "SHP-2"): {32: 90.6, 512: 202.0, 8192: 283.0},
    ("FB-10B", "SHP-k"): {32: 256.0},
}


def _live_runs():
    """Execute the real protocol on scaled graphs; report metering.

    Each graph runs on both backends: the simulator supplies the modeled
    cluster minutes, the multiprocess backend supplies genuinely parallel
    elapsed wall-clock — same seed, bit-identical assignment, so the fanout
    column is shared.
    """
    cost = CostModel()
    rows = []
    datasets = ("soc-Pokec",) if smoke_mode() else ("soc-Pokec", "FB-50M")
    for name in datasets:
        graph = bench_dataset(name)
        # Bench-scale distributed execution: small iteration budget per level.
        config = SHPConfig(
            k=32, seed=11, iterations_per_bisection=4, swap_mode="bernoulli"
        )
        cluster = ClusterSpec(num_workers=4)
        run = DistributedSHP(config, cluster=cluster, mode="2", backend="sim").run(graph)
        mp_run = DistributedSHP(config, cluster=cluster, mode="2", backend="mp").run(
            graph
        )
        rows.append(
            {
                "hypergraph": name,
                "|E| (scaled)": graph.num_edges,
                "supersteps": run.supersteps,
                "messages": run.metrics.total_messages,
                "remote MB": round(run.metrics.total_remote_bytes / 1e6, 1),
                "peak worker MB": round(run.metrics.peak_worker_memory() / 1e6, 1),
                "modeled min": round(run.metrics.modeled_seconds(cost) / 60, 2),
                "sim wall sec": round(run.metrics.wall_seconds, 1),
                "mp wall sec": round(mp_run.metrics.wall_seconds, 1),
                "fanout": round(average_fanout(graph, run.assignment, 32), 2),
                "fanout agrees": average_fanout(graph, mp_run.assignment, 32)
                == average_fanout(graph, run.assignment, 32),
            }
        )
    return rows


def _paper_scale_grid():
    cluster = ClusterSpec(num_workers=4)
    rows = []
    for name in TABLE3_DATASETS:
        spec = DATASETS[name]
        shape = GraphShape(
            name=name,
            num_queries=spec.paper_q,
            num_data=spec.paper_d,
            num_edges=spec.paper_e,
            family=spec.family,
        )
        for k in K_VALUES:
            row = {"hypergraph": name, "k": k}
            row["SHP-2"] = estimate_shp(shape, k, cluster, mode="2").display
            row["SHP-k"] = estimate_shp(shape, k, cluster, mode="k").display
            row["Zoltan~"] = estimate_zoltan_like(shape, k, cluster).display
            row["Parkway~"] = estimate_parkway_like(shape, k, cluster).display
            for tool in ("SHP-2", "SHP-k", "Zoltan", "Parkway"):
                paper = PAPER_MINUTES.get((name, tool), {}).get(k)
                if paper is not None:
                    row[f"paper {tool}"] = paper
            rows.append(row)
    return rows


def test_table3_distributed_runtimes(benchmark):
    live = benchmark.pedantic(_live_runs, rounds=1, iterations=1)
    modeled = _paper_scale_grid()
    text = format_table(
        live, title="Table 3 (live layer) — metered 4-worker protocol runs"
    )
    text += "\n" + format_table(
        modeled,
        title="Table 3 (paper scale) — modeled minutes on 4×144GB, 10h budget",
    )
    record("table3_distributed", text, data={"live": live, "modeled": modeled})

    # Backend parity on the live layer: the multiprocess run must land on
    # exactly the same partition as the simulator (same seed).
    assert all(row["fanout agrees"] for row in live)

    # Failure-pattern assertions (the paper's headline result).
    cells = {(r["hypergraph"], r["k"]): r for r in modeled}
    for name in TABLE3_DATASETS:
        for k in K_VALUES:
            assert cells[(name, k)]["SHP-2"] not in ("OOM", "TIMEOUT"), (name, k)
    assert cells[("FB-2B", 32)]["Zoltan~"] == "OOM"
    assert cells[("soc-LJ", 32)]["Parkway~"] == "OOM"
    assert cells[("FB-50M", 32)]["Parkway~"] not in ("OOM", "TIMEOUT")
    assert cells[("FB-10B", 8192)]["SHP-k"] == "TIMEOUT"
