"""Shared benchmark configuration: scales, dataset cache, paper references.

All benches run at laptop scale (see DESIGN.md Section 5): every table
prints published sizes next to generated ones, and `REPRO_BENCH_SCALE`
multiplies the default scales for bigger runs (e.g. ``REPRO_BENCH_SCALE=4
pytest benchmarks/``).

CI runs every bench in **smoke mode** (``pytest benchmarks/ --smoke``):
graph scales shrink by 20x, sweeps collapse to a single seed/setting, and
the point is only that each benchmark still executes end to end — the
numbers are not meaningful at that size.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.hypergraph import load_dataset

#: Per-dataset default scales: chosen so each stand-in lands at 30-150k pins,
#: keeping the full benchmark suite in the minutes range.
BENCH_SCALES: dict[str, float] = {
    "email-Enron": 0.20,
    "soc-Epinions": 0.15,
    "web-Stanford": 0.04,
    "web-BerkStan": 0.016,
    "soc-Pokec": 0.004,
    "soc-LJ": 0.0016,
    "FB-10M": 0.08,
    "FB-50M": 0.017,
    "FB-2B": 0.0004,
    "FB-5B": 0.00017,
    "FB-10B": 0.00008,
}

#: Graph-scale shrink applied on top of BENCH_SCALES in smoke mode.
SMOKE_SHRINK = 0.05

_SMOKE = False


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="smoke mode: tiny graphs, one seed per sweep (CI rot check)",
    )


def pytest_configure(config) -> None:
    global _SMOKE
    _SMOKE = bool(config.getoption("--smoke", default=False))


def smoke_mode() -> bool:
    """True when the suite runs under ``--smoke`` (benches shrink sweeps)."""
    return _SMOKE


def scale_factor() -> float:
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if smoke_mode():
        factor *= SMOKE_SHRINK
    return factor


@lru_cache(maxsize=32)
def bench_dataset(name: str, seed: int = 0):
    """Dataset stand-in at bench scale (cached across benchmark files)."""
    return load_dataset(name, scale=BENCH_SCALES[name] * scale_factor(), seed=seed)


@pytest.fixture(scope="session")
def dataset_loader():
    return bench_dataset
