"""Table 2: fanout quality of SHP vs the multi-level partitioner family.

The paper compares SHP-2 and SHP-k against Mondriaan, Parkway, and Zoltan
for k ∈ {2, 8, 32, 128, 512} on eight hypergraphs and reports (left) the
percentage increase over the best fanout achieved by any tool and (right)
the raw fanout values.  We reproduce both grids with our implementations of
the same algorithm families (closed binaries are unavailable; DESIGN.md §5).

The shape to reproduce (paper Section 4.2.2):

* no partitioner wins everywhere;
* SHP is competitive on social/FB graphs, weaker (10-30 % over the best)
  on web graphs, where the multi-level tools' coarsening excels;
* SHP-2 is typically a few percent behind SHP-k (the scalability trade).
"""

from __future__ import annotations

import time

from conftest import bench_dataset

from repro.bench import format_table, record
from repro.baselines import get_partitioner
from repro.objectives import average_fanout

DATASETS = [
    "email-Enron",
    "soc-Epinions",
    "web-Stanford",
    "web-BerkStan",
    "soc-Pokec",
    "soc-LJ",
    "FB-10M",
    "FB-50M",
]
K_VALUES = [2, 8, 32, 128, 512]
#: the multi-level styles get the full grid up to k = 32; larger k keeps the
#: bench in the minutes range with SHP plus the strongest multilevel only.
ALGOS_SMALL_K = ["shp-k", "shp-2", "mondriaan-like", "zoltan-like", "parkway-like"]
ALGOS_LARGE_K = ["shp-k", "shp-2", "mondriaan-like"]

#: Table 2 (right), paper's raw fanout values, for side-by-side reporting.
PAPER_FANOUT = {
    ("email-Enron", 2): {"SHP-k": 1.15, "SHP-2": 1.13, "Mondriaan": 1.11, "Zoltan": 1.19},
    ("email-Enron", 8): {"SHP-k": 1.7, "SHP-2": 1.78, "Mondriaan": 1.62, "Zoltan": 1.7},
    ("email-Enron", 32): {"SHP-k": 2.32, "SHP-2": 2.54, "Mondriaan": 2.39, "Zoltan": 2.40},
    ("web-Stanford", 32): {"SHP-k": 1.30, "SHP-2": 1.40, "Mondriaan": 1.13, "Zoltan": 1.14},
    ("soc-Pokec", 32): {"SHP-k": 4.07, "SHP-2": 4.27, "Mondriaan": 4.08, "Zoltan": 4.06},
    ("FB-10M", 32): {"SHP-k": 21.81, "SHP-2": 21.62, "Mondriaan": 23.25, "Zoltan": 23.12},
}


def _run_grid():
    raw_rows = []
    for dataset_name in DATASETS:
        graph = bench_dataset(dataset_name)
        for k in K_VALUES:
            if k >= graph.num_data // 4:
                continue
            algos = ALGOS_SMALL_K if k <= 32 else ALGOS_LARGE_K
            fanouts: dict[str, float] = {}
            runtimes: dict[str, float] = {}
            for algo in algos:
                start = time.perf_counter()
                result = get_partitioner(algo)(graph, k=k, epsilon=0.05, seed=17)
                runtimes[algo] = time.perf_counter() - start
                fanouts[algo] = average_fanout(graph, result.assignment, k)
            best = min(fanouts.values())
            row = {"hypergraph": dataset_name, "k": k}
            for algo in algos:
                row[algo] = round(fanouts[algo], 3)
            for algo in algos:
                row[f"{algo} +%"] = round(100 * (fanouts[algo] / best - 1), 1)
            row["sec"] = round(sum(runtimes.values()), 1)
            raw_rows.append(row)
    return raw_rows


def test_table2_quality_grid(benchmark):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    fanout_cols = ["hypergraph", "k"] + ALGOS_SMALL_K + ["sec"]
    rel_cols = ["hypergraph", "k"] + [f"{a} +%" for a in ALGOS_SMALL_K]
    text = format_table(rows, title="Table 2 (right) — raw fanout", columns=fanout_cols)
    text += "\n" + format_table(
        rows, title="Table 2 (left) — % increase over best", columns=rel_cols
    )
    paper_rows = [
        {"hypergraph": key[0], "k": key[1], **values}
        for key, values in PAPER_FANOUT.items()
    ]
    text += "\n" + format_table(
        paper_rows, title="Paper reference values (published scale)"
    )
    record("table2_quality", text, data=rows)

    # Shape assertions from Section 4.2.2.
    shp2_gap = [row["shp-2 +%"] for row in rows]
    assert max(shp2_gap) < 60.0  # SHP-2 never catastrophically behind
    shp_better_cells = sum(
        1 for row in rows if min(row["shp-2 +%"], row["shp-k +%"]) <= 5.0
    )
    assert shp_better_cells >= len(rows) // 3  # competitive on a large share
