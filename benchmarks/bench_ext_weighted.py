"""Extension E3: traffic-weighted fanout optimization.

Production traffic is popularity-skewed, so average *per-request* fanout —
not per-query fanout — determines fleet latency.  Weighting queries by
sampled traffic frequency during optimization serves the hot queries
better at a tiny cost on the cold tail.
"""

from __future__ import annotations

import numpy as np

from repro import shp_2
from repro.bench import format_table, record
from repro.hypergraph import BipartiteGraph, community_bipartite
from repro.objectives import bucket_counts
from repro.workloads import zipf_weights

K = 16


def _run():
    base = community_bipartite(4000, 6000, 40000, num_communities=48, mixing=0.25, seed=43)
    traffic = zipf_weights(base.num_queries, exponent=1.4, seed=44) * base.num_queries
    weighted = BipartiteGraph(
        num_queries=base.num_queries,
        num_data=base.num_data,
        q_indptr=base.q_indptr,
        q_indices=base.q_indices,
        d_indptr=base.d_indptr,
        d_indices=base.d_indices,
        query_weights=traffic,
        name="weighted",
    )

    res_plain = shp_2(base, K, seed=5)
    res_weighted = shp_2(weighted, K, seed=5)

    def report(label, assignment):
        counts = bucket_counts(base, assignment, K)
        fanouts = (counts > 0).sum(axis=1).astype(np.float64)
        per_query = float(fanouts.mean())
        per_request = float((fanouts * traffic).sum() / traffic.sum())
        hot = np.argsort(-traffic)[: base.num_queries // 50]
        return {
            "optimization": label,
            "per-query fanout": round(per_query, 3),
            "per-request fanout": round(per_request, 3),
            "hot-2% fanout": round(float(fanouts[hot].mean()), 3),
        }

    return [
        report("unweighted", res_plain.assignment),
        report("traffic-weighted", res_weighted.assignment),
    ]


def test_ext_weighted_queries(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Extension E3 — traffic-weighted optimization (k={K}, Zipf traffic)"
    )
    record("ext_weighted", text, data=rows)

    plain, weighted = rows
    # Weighted optimization improves what production cares about: the fanout
    # of the traffic that actually arrives, especially its hot head...
    assert weighted["hot-2% fanout"] < plain["hot-2% fanout"]
    assert weighted["per-request fanout"] <= 1.02 * plain["per-request fanout"]
    # ...while the per-query average stays in the same ballpark.
    assert weighted["per-query fanout"] <= 1.3 * plain["per-query fanout"]
