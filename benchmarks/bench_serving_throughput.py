"""Serving-layer throughput: batched vs loop traffic replay.

The serving simulator's affordability rests on the batched replay planner:
one flat gather + one sort + one vectorized lognormal pass for the whole
trace, against the reference path's per-query Python loop.  This bench
replays an identical Zipf trace (100k queries at full scale) through both
paths on a Darwini-like friendship workload and reports replayed
queries/sec, pinning the counters as bitwise-identical and the batch path
at >= 20x the loop throughput (the ISSUE 2 acceptance bar).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import smoke_mode

from repro import shp_2
from repro.bench import format_table, record
from repro.hypergraph import darwini_bipartite
from repro.sharding import LatencyModel, replay_traffic
from repro.workloads import sample_queries

NUM_SERVERS = 40


def _throughput():
    num_users = 2000 if smoke_mode() else 8000
    num_queries = 5_000 if smoke_mode() else 100_000
    graph = darwini_bipartite(num_users, avg_degree=30, clustering=0.4, seed=31)
    trace = sample_queries(graph, num_queries, skew=0.8, seed=32)
    assignment = shp_2(graph, NUM_SERVERS, seed=33).assignment
    model = LatencyModel(base_ms=1.0, sigma=1.0, size_ms_per_record=0.02)

    timings = {}
    results = {}
    for method in ("loop", "batch"):
        start = time.perf_counter()
        results[method] = replay_traffic(
            graph, assignment, NUM_SERVERS, trace, model, seed=34, method=method
        )
        timings[method] = time.perf_counter() - start

    rows = [
        {
            "path": method,
            "queries": num_queries,
            "sec": round(timings[method], 3),
            "queries/sec": int(num_queries / timings[method]),
        }
        for method in ("loop", "batch")
    ]
    speedup = timings["loop"] / timings["batch"]
    return rows, speedup, results


def test_serving_throughput(benchmark):
    rows, speedup, results = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    text = format_table(
        rows,
        title=f"traffic replay throughput, batch = {speedup:.0f}x loop",
    )
    record("serving_throughput", text, data={"rows": rows, "speedup": speedup})

    # Both paths must agree exactly on every counter the figures are built from.
    loop, batch = results["loop"], results["batch"]
    assert np.array_equal(loop.fanouts, batch.fanouts)
    assert np.array_equal(loop.records, batch.records)
    assert loop.requests_total == batch.requests_total
    assert loop.records_total == batch.records_total
    # Full scale: >= 20x (acceptance bar).  Smoke shrinks the trace 20x, so
    # fixed overheads weigh more; still require a decisive win.
    assert speedup >= (5.0 if smoke_mode() else 20.0)
