"""Ablation A2: the recursive-bisection refinements of Section 3.4.

Toggles the ε schedule and the final-p-fanout approximation on SHP-2, and
reports the SHP-2 vs SHP-k quality/time trade the paper quantifies as
"typically, but not always, 5-10 % larger fanout" for SHP-2.
"""

from __future__ import annotations

import time

from conftest import bench_dataset

from repro import SHPConfig, SHP2Partitioner, SHPKPartitioner
from repro.bench import format_table, record
from repro.objectives import average_fanout, imbalance

K = 32


def _run():
    graph = bench_dataset("soc-Epinions")
    rows = []

    variants = [
        ("SHP-2 full (default)", {"epsilon_schedule": True, "use_final_pfanout": True}),
        ("SHP-2 no ε schedule", {"epsilon_schedule": False, "use_final_pfanout": True}),
        ("SHP-2 no final-p-fanout", {"epsilon_schedule": True, "use_final_pfanout": False}),
        ("SHP-2 neither", {"epsilon_schedule": False, "use_final_pfanout": False}),
    ]
    for label, overrides in variants:
        config = SHPConfig(k=K, seed=29, **overrides)
        start = time.perf_counter()
        result = SHP2Partitioner(config).partition(graph)
        rows.append(
            {
                "variant": label,
                "fanout": round(average_fanout(graph, result.assignment, K), 3),
                "imbalance": round(imbalance(result.assignment, K), 4),
                "sec": round(time.perf_counter() - start, 2),
            }
        )

    start = time.perf_counter()
    shp_k_result = SHPKPartitioner(SHPConfig(k=K, seed=29)).partition(graph)
    rows.append(
        {
            "variant": "SHP-k (reference)",
            "fanout": round(average_fanout(graph, shp_k_result.assignment, K), 3),
            "imbalance": round(imbalance(shp_k_result.assignment, K), 4),
            "sec": round(time.perf_counter() - start, 2),
        }
    )
    return rows


def test_ablation_recursion(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=f"Ablation A2 — SHP-2 refinements (k={K})")
    record("ablation_recursion", text, data=rows)

    by_label = {row["variant"]: row for row in rows}
    # The ε schedule keeps the final imbalance within ε.
    assert by_label["SHP-2 full (default)"]["imbalance"] <= 0.05 + 1e-9
    # SHP-2 quality within the paper's band of SHP-k (allowing bench noise).
    ratio = by_label["SHP-2 full (default)"]["fanout"] / by_label["SHP-k (reference)"]["fanout"]
    assert ratio < 1.30
