"""Table 1: properties of the hypergraphs used in the experiments.

Regenerates the dataset table with both the published sizes and the sizes
of our synthetic stand-ins at bench scale (DESIGN.md Section 5 records the
substitution rationale per family).
"""

from __future__ import annotations

from conftest import BENCH_SCALES, bench_dataset, scale_factor

from repro.bench import format_table, record
from repro.hypergraph import DATASETS, graph_stats


def _build_rows():
    rows = []
    for name, spec in DATASETS.items():
        graph = bench_dataset(name)
        stats = graph_stats(graph)
        rows.append(
            {
                "hypergraph": name,
                "paper |Q|": spec.paper_q,
                "paper |D|": spec.paper_d,
                "paper |E|": spec.paper_e,
                "scale": BENCH_SCALES[name] * scale_factor(),
                "|Q|": stats.num_queries,
                "|D|": stats.num_data,
                "|E|": stats.num_edges,
                "avg deg(q)": round(stats.mean_query_degree, 1),
            }
        )
    return rows


def test_table1_dataset_properties(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    text = format_table(
        rows, title="Table 1 — hypergraph properties (published vs stand-in)"
    )
    record("table1_datasets", text, data=rows)
    # Sanity: the published size ordering is preserved by the stand-ins.
    by_paper = sorted(rows, key=lambda r: r["paper |E|"])
    generated = [r["|E|"] for r in by_paper]
    grew = sum(b >= a for a, b in zip(generated, generated[1:]))
    assert grew >= len(generated) // 2
