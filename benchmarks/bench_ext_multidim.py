"""Extension E2: multi-dimensional balance (Section 5, requirement (ii)).

The paper's heuristic: partition into c·k buckets balancing one dimension,
then merge into k groups balancing all dimensions.  Sweeping c shows the
trade: larger c gives the merge more freedom (better multi-dim balance)
at slightly higher fanout (finer buckets constrain locality less well).
"""

from __future__ import annotations

import numpy as np

from repro import SHPConfig, partition_multidim, shp_2
from repro.bench import format_table, record
from repro.hypergraph import community_bipartite
from repro.objectives import average_fanout

K = 8
C_VALUES = [1, 2, 4, 8]


def _run():
    graph = community_bipartite(2500, 4000, 25000, num_communities=32, mixing=0.2, seed=37)
    rng = np.random.default_rng(41)
    weights = np.stack(
        [
            np.ones(graph.num_data),  # primary: record count
            rng.exponential(1.0, graph.num_data),  # CPU cost
            rng.lognormal(0.0, 0.7, graph.num_data),  # storage bytes
        ],
        axis=1,
    )

    # Reference: plain SHP-2 ignores the secondary dimensions entirely.
    plain = shp_2(graph, K, seed=3)
    loads = np.stack(
        [np.bincount(plain.assignment, weights=weights[:, d], minlength=K) for d in range(3)]
    )
    plain_imb = (loads.max(axis=1) / loads.mean(axis=1) - 1.0).max()
    rows = [
        {
            "c": "(plain SHP-2)",
            "fanout": round(average_fanout(graph, plain.assignment, K), 3),
            "worst dim imbalance": round(float(plain_imb), 3),
        }
    ]

    for c in C_VALUES:
        outcome = partition_multidim(
            graph, weights, k=K, c=c,
            config=SHPConfig(k=max(2, c * K), seed=3, iterations_per_bisection=10),
        )
        rows.append(
            {
                "c": c,
                "fanout": round(average_fanout(graph, outcome.result.assignment, K), 3),
                "worst dim imbalance": round(float(outcome.dimension_imbalance.max()), 3),
            }
        )
    return rows


def test_ext_multidim(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Extension E2 — multi-dimensional balance via c·k merge (k={K})"
    )
    record("ext_multidim", text, data=rows)

    plain = rows[0]
    merged = {row["c"]: row for row in rows[1:]}
    # c >= 4 merges balance every dimension far better than plain SHP-2.
    assert merged[4]["worst dim imbalance"] < 0.6 * plain["worst dim imbalance"]
    # The fanout cost of the merge stays moderate.
    assert merged[4]["fanout"] < 1.6 * plain["fanout"]
    # More freedom (larger c) does not hurt balance.
    assert merged[8]["worst dim imbalance"] <= merged[1]["worst dim imbalance"] + 1e-9
