"""Job-spec runner overhead: `repro.api.run` vs a direct partitioner call.

The ISSUE 5 redesign routes every entry point (CLI flags, spec files,
benchmarks) through one `run(spec)` runner.  That is only acceptable if the
declarative layer costs nothing: this bench runs the same SHP-2 job both
ways on a Table 1 stand-in, pins the assignments bitwise-identical (the
runner adds no hidden knobs), and reports the runner's relative overhead —
including a variant that writes the full run-artifact directory
(manifest.json + assignment.npz + metrics.jsonl) to price artifact IO.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import bench_dataset, smoke_mode

from repro.api import AlgorithmSpec, GraphSpec, JobSpec, OutputSpec, run
from repro.baselines import get_partitioner
from repro.bench import format_table, record

K = 16
SEED = 11


def _bench(tmp_dir):
    dataset = "email-Enron"
    graph = bench_dataset(dataset)
    pruned = graph.remove_small_queries()

    start = time.perf_counter()
    direct = get_partitioner("shp-2")(pruned, k=K, epsilon=0.05, seed=SEED)
    direct_sec = time.perf_counter() - start

    spec = JobSpec(
        seed=SEED,
        graph=GraphSpec(source="dataset", dataset=dataset),
        algorithm=AlgorithmSpec(name="shp-2", k=K),
    )
    start = time.perf_counter()
    via_runner = run(spec, graph=graph)
    runner_sec = time.perf_counter() - start

    artifact_spec = spec.with_(output=OutputSpec(artifacts=str(tmp_dir / "artifacts")))
    start = time.perf_counter()
    with_artifacts = run(artifact_spec, graph=graph)
    artifacts_sec = time.perf_counter() - start

    np.testing.assert_array_equal(direct.assignment, via_runner.assignment)
    np.testing.assert_array_equal(direct.assignment, with_artifacts.assignment)

    rows = [
        {"path": "direct call", "sec": round(direct_sec, 3), "overhead %": 0.0},
        {
            "path": "run(spec)",
            "sec": round(runner_sec, 3),
            "overhead %": round(100.0 * (runner_sec / direct_sec - 1.0), 1),
        },
        {
            "path": "run(spec) + artifacts",
            "sec": round(artifacts_sec, 3),
            "overhead %": round(100.0 * (artifacts_sec / direct_sec - 1.0), 1),
        },
    ]
    return rows, direct_sec, runner_sec


def test_jobspec_runner_overhead(benchmark, tmp_path):
    rows, direct_sec, runner_sec = benchmark.pedantic(
        lambda: _bench(tmp_path), rounds=1, iterations=1
    )
    text = format_table(rows, title=f"job-spec runner overhead (shp-2, k={K})")
    record("jobspec_runner", text, rows)
    if not smoke_mode():
        # The declarative layer (spec validation + evaluation + report
        # assembly) must stay a small fraction of the optimization itself.
        assert runner_sec < 2.0 * direct_sec + 0.5
