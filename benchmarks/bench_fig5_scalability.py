"""Figure 5: SHP-2 scalability in the distributed setting.

* **5a** — total time (runtime × machines) as a function of |E| for
  k ∈ {2, 32, 512, 8192, 131072}: the paper's log-scale plot is straight
  lines, i.e. total time ∝ |E| · log k.  We verify both proportionalities
  on the modeled paper-scale numbers *and* measure the |E| scaling live by
  metering protocol messages on growing stand-ins.
* **5b** — run-time and total time on FB-10B with 4, 8, 16 machines:
  sublinear speedup (communication grows), increasing total time.
* **5c (real)** — actual elapsed wall-clock of the multiprocess backend on
  a Darwini-generated workload as worker processes are added, next to the
  metered message counts the simulation layer reports.  This is measured
  speedup, not a model; its shape depends on the CPU cores available.
"""

from __future__ import annotations

import numpy as np
from conftest import scale_factor, smoke_mode

from repro import SHPConfig
from repro.bench import format_series, format_table, record
from repro.baselines import GraphShape, estimate_shp
from repro.distributed import ClusterSpec
from repro.distributed_shp import DistributedSHP
from repro.hypergraph import DATASETS, darwini_bipartite, load_dataset
from repro.objectives import average_fanout

FIG5A_DATASETS = ["FB-2B", "FB-5B", "FB-10B"]
FIG5A_K = [2, 32, 512, 8192, 131072]


def _fig5a_modeled():
    cluster = ClusterSpec(num_workers=4)
    rows = []
    for name in FIG5A_DATASETS:
        spec = DATASETS[name]
        shape = GraphShape(name, spec.paper_q, spec.paper_d, spec.paper_e, spec.family)
        row: dict[str, object] = {"hypergraph": name, "|E|": spec.paper_e}
        for k in FIG5A_K:
            est = estimate_shp(shape, k, cluster, mode="2")
            row[f"k={k}"] = round(est.minutes * 4, 1)  # total = runtime × machines
        rows.append(row)
    return rows


def _fig5a_live():
    """Measured message volume vs |E| on growing graphs (linearity check)."""
    rows = []
    for scale_name, factor in (("small", 0.5), ("medium", 1.0), ("large", 2.0)):
        graph = load_dataset("FB-2B", scale=0.0003 * factor * scale_factor(), seed=5)
        config = SHPConfig(k=8, seed=3, iterations_per_bisection=3, swap_mode="bernoulli")
        run = DistributedSHP(config, mode="2").run(graph)
        rows.append(
            {
                "run": scale_name,
                "|E|": graph.num_edges,
                "messages": run.metrics.total_messages,
                "msg per edge": round(run.metrics.total_messages / graph.num_edges, 2),
                "supersteps": run.supersteps,
            }
        )
    return rows


def _fig5c_real_speedup():
    """Measured wall-clock of the multiprocess backend vs worker count.

    One OS process per worker over a shared-memory graph; the `messages`
    column is the same metered protocol traffic the simulator reports (it
    is backend-invariant), so the table shows real elapsed speedup next to
    simulated message counts.
    """
    num_users = 1200 if smoke_mode() else 12000
    worker_counts = [1, 2] if smoke_mode() else [1, 2, 4]
    graph = darwini_bipartite(num_users, avg_degree=8.0, seed=9)
    config = SHPConfig(
        k=4, seed=3,
        iterations_per_bisection=2 if smoke_mode() else 3,
        swap_mode="bernoulli",
    )
    cluster = ClusterSpec()
    rows = []
    base = None
    for workers in worker_counts:
        run = DistributedSHP(
            config, cluster=cluster.with_workers(workers), mode="2", backend="mp"
        ).run(graph)
        elapsed = run.metrics.wall_seconds
        if base is None:
            base = elapsed
        rows.append(
            {
                "workers": workers,
                "wall sec": round(elapsed, 2),
                "speedup": round(base / elapsed, 2),
                "messages": run.metrics.total_messages,
                "remote MB": round(run.metrics.total_remote_bytes / 1e6, 1),
                "fanout": round(average_fanout(graph, run.assignment, 4), 3),
            }
        )
    return rows


def _fig5b():
    spec = DATASETS["FB-10B"]
    shape = GraphShape("FB-10B", spec.paper_q, spec.paper_d, spec.paper_e, spec.family)
    machines = [4, 8, 16]
    runtime = []
    total = []
    for m in machines:
        est = estimate_shp(shape, 8192, ClusterSpec(num_workers=m), mode="2")
        runtime.append(round(est.minutes, 1))
        total.append(round(est.minutes * m, 1))
    return machines, runtime, total


def test_fig5_scalability(benchmark):
    live = benchmark.pedantic(_fig5a_live, rounds=1, iterations=1)
    modeled = _fig5a_modeled()
    machines, runtime, total = _fig5b()
    real = _fig5c_real_speedup()

    text = format_table(
        modeled, title="Figure 5a — modeled total time (minutes) vs |E| (4 machines)"
    )
    text += "\n" + format_table(
        live, title="Figure 5a (live) — measured protocol messages vs |E|"
    )
    text += "\n" + format_series(
        "machines",
        machines,
        {"run-time (min)": runtime, "total time (min)": total},
        title="Figure 5b — FB-10B, k=8192 (paper: 4->16 machines gives <4x speedup)",
    )
    text += "\n" + format_table(
        real,
        title="Figure 5c (real) — multiprocess backend wall-clock vs workers "
        "(darwini workload; shape depends on available cores)",
    )
    record(
        "fig5_scalability", text,
        data={"modeled": modeled, "live": live, "real": real,
              "fig5b": {"machines": machines, "runtime": runtime, "total": total}},
    )

    # Real-backend sanity: every worker count completed the full protocol
    # and metered the same per-protocol traffic ballpark (counts are not
    # placement-invariant, but all runs must land within 2x of each other).
    real_msgs = [row["messages"] for row in real]
    assert min(real_msgs) > 0
    assert max(real_msgs) < 2.0 * min(real_msgs)
    assert all(row["wall sec"] > 0 for row in real)

    # Shape assertions.
    # (1) total time ∝ |E| at fixed k (modeled grid).
    es = np.array([row["|E|"] for row in modeled], dtype=float)
    t32 = np.array([row["k=32"] for row in modeled], dtype=float)
    ratio = (t32 / es) / (t32[0] / es[0])
    assert np.all((ratio > 0.5) & (ratio < 2.0))
    # (2) total time grows ~log k: doubling k multiplies time by a constant.
    row0 = modeled[0]
    increments = [
        row0[f"k={b}"] / row0[f"k={a}"]
        for a, b in zip(FIG5A_K[1:], FIG5A_K[2:])
    ]
    assert max(increments) < 3.0  # far below the ∝k growth of SHP-k
    # (3) live layer: messages scale linearly with |E| (within 2x).
    per_edge = [row["msg per edge"] for row in live]
    assert max(per_edge) < 2.0 * min(per_edge)
    # (4) Figure 5b: sublinear speedup, growing total time.
    assert runtime[0] > runtime[-1] > runtime[0] / 4
    assert total[-1] > total[0]
