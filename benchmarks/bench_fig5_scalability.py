"""Figure 5: SHP-2 scalability in the distributed setting.

* **5a** — total time (runtime × machines) as a function of |E| for
  k ∈ {2, 32, 512, 8192, 131072}: the paper's log-scale plot is straight
  lines, i.e. total time ∝ |E| · log k.  We verify both proportionalities
  on the modeled paper-scale numbers *and* measure the |E| scaling live by
  metering protocol messages on growing stand-ins.
* **5b** — run-time and total time on FB-10B with 4, 8, 16 machines:
  sublinear speedup (communication grows), increasing total time.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_dataset

from repro import SHPConfig
from repro.bench import format_series, format_table, record
from repro.baselines import GraphShape, estimate_shp
from repro.distributed import ClusterSpec
from repro.distributed_shp import DistributedSHP
from repro.hypergraph import DATASETS, load_dataset

FIG5A_DATASETS = ["FB-2B", "FB-5B", "FB-10B"]
FIG5A_K = [2, 32, 512, 8192, 131072]


def _fig5a_modeled():
    cluster = ClusterSpec(num_workers=4)
    rows = []
    for name in FIG5A_DATASETS:
        spec = DATASETS[name]
        shape = GraphShape(name, spec.paper_q, spec.paper_d, spec.paper_e, spec.family)
        row: dict[str, object] = {"hypergraph": name, "|E|": spec.paper_e}
        for k in FIG5A_K:
            est = estimate_shp(shape, k, cluster, mode="2")
            row[f"k={k}"] = round(est.minutes * 4, 1)  # total = runtime × machines
        rows.append(row)
    return rows


def _fig5a_live():
    """Measured message volume vs |E| on growing graphs (linearity check)."""
    rows = []
    for scale_name, factor in (("small", 0.5), ("medium", 1.0), ("large", 2.0)):
        graph = load_dataset("FB-2B", scale=0.0003 * factor, seed=5)
        config = SHPConfig(k=8, seed=3, iterations_per_bisection=3, swap_mode="bernoulli")
        run = DistributedSHP(config, mode="2").run(graph)
        rows.append(
            {
                "run": scale_name,
                "|E|": graph.num_edges,
                "messages": run.metrics.total_messages,
                "msg per edge": round(run.metrics.total_messages / graph.num_edges, 2),
                "supersteps": run.supersteps,
            }
        )
    return rows


def _fig5b():
    spec = DATASETS["FB-10B"]
    shape = GraphShape("FB-10B", spec.paper_q, spec.paper_d, spec.paper_e, spec.family)
    machines = [4, 8, 16]
    runtime = []
    total = []
    for m in machines:
        est = estimate_shp(shape, 8192, ClusterSpec(num_workers=m), mode="2")
        runtime.append(round(est.minutes, 1))
        total.append(round(est.minutes * m, 1))
    return machines, runtime, total


def test_fig5_scalability(benchmark):
    live = benchmark.pedantic(_fig5a_live, rounds=1, iterations=1)
    modeled = _fig5a_modeled()
    machines, runtime, total = _fig5b()

    text = format_table(
        modeled, title="Figure 5a — modeled total time (minutes) vs |E| (4 machines)"
    )
    text += "\n" + format_table(
        live, title="Figure 5a (live) — measured protocol messages vs |E|"
    )
    text += "\n" + format_series(
        "machines",
        machines,
        {"run-time (min)": runtime, "total time (min)": total},
        title="Figure 5b — FB-10B, k=8192 (paper: 4->16 machines gives <4x speedup)",
    )
    record(
        "fig5_scalability", text,
        data={"modeled": modeled, "live": live,
              "fig5b": {"machines": machines, "runtime": runtime, "total": total}},
    )

    # Shape assertions.
    # (1) total time ∝ |E| at fixed k (modeled grid).
    es = np.array([row["|E|"] for row in modeled], dtype=float)
    t32 = np.array([row["k=32"] for row in modeled], dtype=float)
    ratio = (t32 / es) / (t32[0] / es[0])
    assert np.all((ratio > 0.5) & (ratio < 2.0))
    # (2) total time grows ~log k: doubling k multiplies time by a constant.
    row0 = modeled[0]
    increments = [
        row0[f"k={b}"] / row0[f"k={a}"]
        for a, b in zip(FIG5A_K[1:], FIG5A_K[2:])
    ]
    assert max(increments) < 3.0  # far below the ∝k growth of SHP-k
    # (3) live layer: messages scale linearly with |E| (within 2x).
    per_edge = [row["msg per edge"] for row in live]
    assert max(per_edge) < 2.0 * min(per_edge)
    # (4) Figure 5b: sublinear speedup, growing total time.
    assert runtime[0] > runtime[-1] > runtime[0] / 4
    assert total[-1] > total[0]
