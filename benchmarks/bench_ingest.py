"""Out-of-core ingest: chunked ``.rgs`` conversion vs in-memory text parse.

The storage subsystem's two load-time claims, measured head to head on a
synthetic ~1M-edge graph:

* **Bounded RSS** — ``convert_to_store`` streams hMetis text into the
  binary store through fixed-size chunks and spill buckets, so its peak
  RSS must stay well below the materialize-everything text reader's.
* **mmap is (nearly) free** — ``GraphStore.open().view()`` maps the CSR
  arrays without copying, so opening the store must be ≥10x faster than
  re-parsing the text file.

Peak RSS is a process-lifetime maximum, so each measurement runs in its
own subprocess, with an import-only subprocess as the interpreter
baseline.  The probe reads ``VmHWM`` from ``/proc/self/status`` (reset by
exec) rather than ``ru_maxrss``, which a child inherits from the parent's
forked image and would report the test runner's peak instead.  Timing/RSS floors
are asserted at full scale only; smoke mode just proves the ingest paths
still execute and agree bit-for-bit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
from conftest import smoke_mode

from repro.bench import format_table, record
from repro.hypergraph import community_bipartite, read_hmetis, write_hmetis
from repro.storage import convert_to_store, open_store_view

#: Full-scale synthetic graph: ~1M pins through the chunked writer.
FULL_EDGES = 1_000_000
SMOKE_EDGES = 30_000
#: Converter chunk size: small enough that bounded-RSS is a real claim
#: (64k-edge chunks against a 1M-edge graph).
CHUNK_EDGES = 1 << 16

_MEASURE = r"""
import json, resource, sys, time


def peak_kb():
    try:  # VmHWM: this process's own high-water mark (reset by exec)
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    # Fallback (non-Linux): lifetime max, inherited across fork.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


mode, src, dst = sys.argv[1], sys.argv[2], sys.argv[3]
if mode not in ("baseline", "text", "convert", "mmap"):
    raise SystemExit(f"unknown mode {mode}")
# Imports happen before the clock starts: they belong to the interpreter
# baseline (both in time and in RSS), not to the ingest path under test.
import numpy  # noqa: F401
from repro.hypergraph import read_hmetis  # noqa: F401
from repro.storage import convert_to_store, open_store_view  # noqa: F401

start = time.perf_counter()
if mode == "text":
    graph = read_hmetis(src)
    assert graph.num_edges > 0
elif mode == "convert":
    convert_to_store(src, dst, chunk_edges=int(sys.argv[4]))
elif mode == "mmap":
    view = open_store_view(src)
    assert view.num_edges > 0
elapsed = time.perf_counter() - start
print(json.dumps({"sec": elapsed, "peak_kb": peak_kb()}))
"""


def _measure(mode: str, src="-", dst="-", chunk_edges=CHUNK_EDGES) -> dict:
    """Run one ingest path in a fresh subprocess; return {sec, peak_kb}."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _MEASURE, mode, str(src), str(dst), str(chunk_edges)],
        check=True, capture_output=True, text=True, env=env,
    )
    return json.loads(out.stdout)


def _run(tmp_path):
    num_edges = SMOKE_EDGES if smoke_mode() else FULL_EDGES
    graph = community_bipartite(
        num_queries=max(200, num_edges // 8),
        num_data=max(300, num_edges // 6),
        num_edges=num_edges,
        num_communities=32,
        seed=17,
    )
    hgr = tmp_path / "ingest.hgr"
    rgs = tmp_path / "ingest.rgs"
    write_hmetis(graph, hgr)

    baseline = _measure("baseline")
    text = _measure("text", hgr)
    convert = _measure("convert", hgr, rgs)
    mmap_open = _measure("mmap", rgs)

    # Correctness at every scale: the streamed store views identically to
    # the text parse.
    parsed = read_hmetis(hgr)
    view = open_store_view(rgs)
    for attr in ("q_indptr", "q_indices", "d_indptr", "d_indices"):
        assert np.array_equal(getattr(parsed, attr), getattr(view, attr)), attr

    def row(path, m):
        return {
            "path": path,
            "sec": round(m["sec"], 3),
            "peak_MiB": round(m["peak_kb"] / 1024, 1),
            "delta_MiB": round((m["peak_kb"] - baseline["peak_kb"]) / 1024, 1),
        }

    return {
        "pins": graph.num_edges,
        "rows": [
            row("import baseline", baseline),
            row("text parse (read_hmetis)", text),
            row(f"convert → .rgs (chunk={CHUNK_EDGES})", convert),
            row("mmap open (.rgs view)", mmap_open),
        ],
        "text_sec": text["sec"],
        "mmap_sec": mmap_open["sec"],
        "text_delta_kb": text["peak_kb"] - baseline["peak_kb"],
        "convert_delta_kb": convert["peak_kb"] - baseline["peak_kb"],
    }


def test_ingest(benchmark, tmp_path):
    result = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    text = format_table(
        result["rows"],
        title=f"Out-of-core ingest — {result['pins']:,} pins",
    )
    record("ingest", text, data=result["rows"])

    if smoke_mode():
        return  # floors below are meaningless on a 30k-pin graph

    # Bounded RSS: the chunked converter's memory growth over the
    # interpreter baseline stays under half the text reader's, despite
    # producing the same graph.
    assert result["convert_delta_kb"] < 0.5 * result["text_delta_kb"], result
    # Zero-copy open: mapping the store beats re-parsing text by >=10x.
    assert result["mmap_sec"] * 10 <= result["text_sec"], result
