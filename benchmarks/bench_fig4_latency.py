"""Figure 4: multi-get latency as a function of fanout.

* **4a (synthetic)** — percentile latency of issuing ``fanout`` parallel
  trivial requests, in units of the mean single-request latency ``t``:
  the max of heavy-tailed draws grows with fanout, and reducing fanout
  40 → 10 roughly halves the average latency.
* **4b (realistic)** — a Darwini-like friendship graph sharded over 40
  servers with SHP; a Zipf traffic sample is replayed against the KV store
  with the request-size latency term enabled.  Reported: latency-vs-fanout
  percentile curves (as in the figure) plus the random-vs-SHP comparison
  behind the paper's "2x lower average latency" and CPU observations.
"""

from __future__ import annotations

import numpy as np

from repro import shp_2
from repro.bench import format_series, format_table, record
from repro.baselines import random_partitioner
from repro.hypergraph import darwini_bipartite
from repro.sharding import LatencyModel, latency_by_fanout, percentile_curve, replay_traffic
from repro.workloads import sample_queries

FANOUTS = np.array([1, 5, 10, 15, 20, 25, 30, 35, 40])
NUM_SERVERS = 40


def _fig4a():
    model = LatencyModel(base_ms=1.0, sigma=1.0)
    curve = percentile_curve(model, FANOUTS, trials=6000, seed=21)
    return {
        f"p{int(p)}": [round(v, 2) for v in values] for p, values in curve.items()
    }


def _fig4b():
    graph = darwini_bipartite(6000, avg_degree=40, clustering=0.4, seed=13)
    trace = sample_queries(graph, 4000, skew=0.8, seed=14)
    model = LatencyModel(base_ms=1.0, sigma=1.0, size_ms_per_record=0.02)

    shp = shp_2(graph, NUM_SERVERS, seed=15)
    rnd = random_partitioner(graph, NUM_SERVERS, seed=15)
    replay_shp = replay_traffic(graph, shp.assignment, NUM_SERVERS, trace, model, seed=16)
    replay_rnd = replay_traffic(graph, rnd.assignment, NUM_SERVERS, trace, model, seed=16)

    comparison = []
    for label, replay in (("random", replay_rnd), ("SHP", replay_shp)):
        comparison.append(
            {
                "sharding": label,
                "mean fanout": round(replay.mean_fanout(), 1),
                "mean latency (t)": round(replay.mean_latency(), 2),
                "p99 latency (t)": round(replay.latency_percentile(99), 2),
                "CPU proxy": round(replay.cpu_proxy(), 0),
            }
        )
    curves = latency_by_fanout(replay_shp, max_fanout=35, min_samples=15)
    curve_rows = [
        {"fanout": fanout, **{f"p{int(p)}": round(v, 2) for p, v in percentiles.items()}}
        for fanout, percentiles in sorted(curves.items())
    ]
    return comparison, curve_rows, replay_rnd, replay_shp


def test_fig4_latency(benchmark):
    comparison, curve_rows, replay_rnd, replay_shp = benchmark.pedantic(
        _fig4b, rounds=1, iterations=1
    )
    synthetic = _fig4a()
    text = format_series(
        "fanout",
        FANOUTS.tolist(),
        synthetic,
        title="Figure 4a — synthetic multi-get latency percentiles (units of t)",
    )
    text += "\n" + format_table(
        curve_rows, title="Figure 4b — replayed traffic: latency by fanout (SHP sharding)"
    )
    text += "\n" + format_table(
        comparison, title="Random vs SHP sharding on 40 servers (paper: ~2x latency, CPU drop)"
    )
    record(
        "fig4_latency", text,
        data={"fig4a": synthetic, "fig4b": curve_rows, "comparison": comparison},
    )

    # Shape assertions.
    p99 = synthetic["p99"]
    p50 = synthetic["p50"]
    assert p99[-1] > p99[0]  # tail grows with fanout
    assert all(a <= b for a, b in zip(p50, p99))
    # Latency at fanout 40 is roughly double fanout 10 (paper's "almost half").
    idx10, idx40 = list(FANOUTS).index(10), list(FANOUTS).index(40)
    assert 1.3 < p50[idx40] / p50[idx10] < 3.0
    # SHP sharding cuts fanout, latency and CPU vs random.
    rnd_row, shp_row = comparison
    assert shp_row["mean fanout"] < 0.5 * rnd_row["mean fanout"]
    assert shp_row["mean latency (t)"] < rnd_row["mean latency (t)"]
    assert shp_row["CPU proxy"] < rnd_row["CPU proxy"]
