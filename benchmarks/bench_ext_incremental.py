"""Extension E1: incremental repartitioning (Section 5, requirement (i)).

After the graph evolves, re-optimizing from scratch moves most records;
warm-starting from the previous partition with a move penalty trades a
little fanout for dramatically lower migration churn.
"""

from __future__ import annotations

import numpy as np

from repro import SHPConfig, incremental_update, shp_2
from repro.bench import format_table, record
from repro.hypergraph import BipartiteGraph, community_bipartite
from repro.objectives import average_fanout

PENALTIES = [0.0, 0.02, 0.05, 0.1, 0.2, 0.5]
K = 16


def _evolved_pair():
    base = community_bipartite(3000, 4500, 30000, num_communities=48, mixing=0.2, seed=31)
    overlay = community_bipartite(300, 4500, 3000, mixing=0.5, seed=77)
    q = np.concatenate([base.q_of_edge, overlay.q_of_edge + base.num_queries])
    d = np.concatenate([base.q_indices, overlay.q_indices])
    evolved = BipartiteGraph.from_edges(
        q, d, num_queries=base.num_queries + overlay.num_queries,
        num_data=4500, dedupe=False, name="evolved",
    )
    return base, evolved


def _run():
    base, evolved = _evolved_pair()
    previous = shp_2(base, K, seed=1).assignment
    stale_fanout = average_fanout(evolved, previous, K)

    rows = [
        {
            "move_penalty": "(keep stale)",
            "churn %": 0.0,
            "fanout": round(stale_fanout, 3),
        }
    ]
    for penalty in PENALTIES:
        outcome = incremental_update(
            evolved, previous,
            SHPConfig(k=K, seed=2, max_iterations=20, move_penalty=penalty),
        )
        rows.append(
            {
                "move_penalty": penalty,
                "churn %": round(100 * outcome.churn, 1),
                "fanout": round(average_fanout(evolved, outcome.result.assignment, K), 3),
            }
        )
    return rows, stale_fanout


def test_ext_incremental(benchmark):
    rows, stale_fanout = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Extension E1 — incremental update, churn vs fanout (k={K})"
    )
    record("ext_incremental", text, data=rows)

    penalized = [r for r in rows if isinstance(r["move_penalty"], float)]
    churn = [r["churn %"] for r in penalized]
    fanouts = [r["fanout"] for r in penalized]
    # Churn decreases monotonically (within noise) as the penalty grows.
    assert churn[-1] < churn[0]
    # Every incremental run improves on the stale partition.
    assert all(f <= stale_fanout + 1e-9 for f in fanouts)
    # Moderate penalties keep most of the quality at a fraction of the churn.
    free = penalized[0]
    moderate = next(r for r in penalized if r["move_penalty"] == 0.1)
    assert moderate["churn %"] < 0.8 * free["churn %"]
