"""Figure 2: the local-minimum example motivating probabilistic fanout.

Regenerates the paper's narrative as a table: under plain fanout every
single-vertex move has non-positive gain (local search is stuck at total
fanout 6), while p-fanout assigns positive gains and SHP escapes to the
optimum (total fanout 4).
"""

from __future__ import annotations


from repro import SHPConfig, SHPKPartitioner
from repro.bench import format_table, record
from repro.core import move_gains_dense
from repro.hypergraph import figure2_graph, figure2_reference_partition
from repro.objectives import (
    FanoutObjective,
    PFanoutObjective,
    average_fanout,
    bucket_counts,
)


def _run():
    graph = figure2_graph()
    stuck = figure2_reference_partition()
    counts = bucket_counts(graph, stuck, 2)
    gain_rows = []
    fan_gains = move_gains_dense(graph, stuck, counts, FanoutObjective())
    for p in (0.25, 0.5, 0.75):
        pf_gains = move_gains_dense(graph, stuck, counts, PFanoutObjective(p))
        gain_rows.append(
            {
                "objective": f"p-fanout(p={p})",
                "max move gain": round(float(pf_gains.max()), 4),
                "improving moves": int((pf_gains > 1e-12).sum()),
            }
        )
    gain_rows.insert(
        0,
        {
            "objective": "fanout (p=1)",
            "max move gain": float(fan_gains.max()),
            "improving moves": int((fan_gains > 0).sum()),
        },
    )

    config = SHPConfig(
        k=2, p=0.5, seed=3, max_iterations=50, move_damping=0.5,
        convergence_fraction=0.0,
    )
    escaped = SHPKPartitioner(config).partition(graph, initial=stuck)
    summary = {
        "stuck total fanout": average_fanout(graph, stuck, 2) * graph.num_queries,
        "after SHP(p=0.5)": average_fanout(graph, escaped.assignment, 2)
        * graph.num_queries,
        "optimum": 4.0,
    }
    return gain_rows, summary


def test_fig2_local_minimum(benchmark):
    gain_rows, summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(gain_rows, title="Figure 2 — move gains in the stuck state")
    text += "\n" + format_table([summary], title="Escape with SHP (p = 0.5)")
    record("fig2_local_minimum", text, data={"gains": gain_rows, "summary": summary})
    assert gain_rows[0]["improving moves"] == 0
    assert all(row["improving moves"] > 0 for row in gain_rows[1:])
    assert summary["after SHP(p=0.5)"] == 4.0
