"""Figure 6: fanout reduction as a function of the fanout probability p.

SHP-2 on the soc-Pokec stand-in across p ∈ (0, 1] and several bucket
counts, reporting the percentage fanout reduction relative to a random
partition.  The paper's finding: values 0.4 ≤ p ≤ 0.8 produce the lowest
fanout, p = 0.5 is a good default, and p = 1 (direct fanout optimization)
is clearly worse.
"""

from __future__ import annotations

from conftest import bench_dataset, smoke_mode

from repro import shp_2
from repro.bench import format_series, record
from repro.baselines import random_partitioner
from repro.objectives import average_fanout

P_VALUES = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
K_VALUES = [2, 8, 32, 128]


def _sweep():
    graph = bench_dataset("soc-Pokec")
    reductions: dict[int, list[float]] = {}
    for k in K_VALUES:
        random_fanout = average_fanout(
            graph, random_partitioner(graph, k, seed=3).assignment, k
        )
        series = []
        for p in P_VALUES:
            if p >= 1.0:
                result = shp_2(graph, k, seed=3, objective="fanout")
            else:
                result = shp_2(graph, k, seed=3, p=p)
            fanout = average_fanout(graph, result.assignment, k)
            series.append(round(100.0 * (fanout / random_fanout - 1.0), 1))
        reductions[k] = series
    return reductions


def test_fig6_probability_sweep(benchmark):
    reductions = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_series(
        "p",
        P_VALUES,
        {f"k={k} (% vs random)": values for k, values in reductions.items()},
        title="Figure 6 — fanout reduction vs fanout probability p (soc-Pokec stand-in)",
    )
    record("fig6_probability_sweep", text, data={str(k): v for k, v in reductions.items()})

    for k, series in reductions.items():
        # All reductions negative (better than random) at any scale.
        assert all(v < 0 for v in series), (k, series)
    if smoke_mode():
        return  # shape claims below need bench-scale graphs
    for k, series in reductions.items():
        by_p = dict(zip(P_VALUES, series))
        # The mid-range (0.4-0.8) contains a value at least as good as p=1
        # (paper: direct fanout optimization is worse than p≈0.5).
        mid_best = min(by_p[p] for p in (0.4, 0.5, 0.6, 0.7, 0.8))
        assert mid_best <= by_p[1.0] + 1e-9, (k, series)
    # At k=8 the p=1 run is strictly worse than the best mid-range p.
    k8 = dict(zip(P_VALUES, reductions[8]))
    assert min(k8[p] for p in (0.4, 0.5, 0.6)) < k8[1.0]
