"""Figure 8: objective comparison — p = 0.5 vs direct fanout vs clique-net.

SHP-2 for k ∈ {2, 8, 32} on six hypergraphs:

* **8a** — % fanout increase when optimizing plain fanout (p = 1) instead
  of p-fanout(0.5): the paper reports ~45 % average degradation.
* **8b** — % fanout increase when optimizing the clique-net objective
  (the p → 0 limit) instead: "often worse, but typically similar".
"""

from __future__ import annotations

import numpy as np
from conftest import bench_dataset, smoke_mode

from repro import shp_2
from repro.bench import format_table, record
from repro.objectives import average_fanout

DATASETS = [
    "email-Enron", "soc-Epinions", "web-Stanford", "web-BerkStan",
    "soc-Pokec", "soc-LJ",
]
K_VALUES = [2, 8, 32]


def _grid():
    rows = []
    for name in DATASETS:
        graph = bench_dataset(name)
        for k in K_VALUES:
            base = average_fanout(graph, shp_2(graph, k, seed=19, p=0.5).assignment, k)
            direct = average_fanout(
                graph, shp_2(graph, k, seed=19, objective="fanout").assignment, k
            )
            cliquenet = average_fanout(
                graph, shp_2(graph, k, seed=19, objective="cliquenet").assignment, k
            )
            rows.append(
                {
                    "hypergraph": name,
                    "k": k,
                    "fanout @p=0.5": round(base, 3),
                    "fanout @p=1": round(direct, 3),
                    "fanout @cliquenet": round(cliquenet, 3),
                    "8a: p=1 +%": round(100 * (direct / base - 1), 1),
                    "8b: cliquenet +%": round(100 * (cliquenet / base - 1), 1),
                }
            )
    return rows


def test_fig8_objectives(benchmark):
    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)
    text = format_table(
        rows,
        title="Figure 8 — objective ablation with SHP-2 (paper: p=1 ≈ +45% avg, clique-net smaller)",
    )
    record("fig8_objectives", text, data=rows)

    direct_penalty = np.array([row["8a: p=1 +%"] for row in rows])
    clique_penalty = np.array([row["8b: cliquenet +%"] for row in rows])
    if smoke_mode():
        return  # penalty magnitudes below need bench-scale graphs
    # 8a: direct fanout optimization is worse on average, often much worse.
    assert direct_penalty.mean() > 5.0
    assert direct_penalty.max() > 20.0
    # 8b: "clique-net optimization is often worse, but typically similar,
    # depending on the graph" — worse on average, never catastrophic, and
    # better than p=0.5 on some graphs (which is why the paper suggests
    # trying both surrogates).
    assert clique_penalty.mean() > 0.0
    assert clique_penalty.max() < 60.0
    assert clique_penalty.min() < 0.0
