#!/usr/bin/env python3
"""Fail on doc rot: broken intra-repo links, and example jobs that no
longer parse.

Scans markdown files for inline links/images ``[text](target)`` and checks
every relative target against the working tree:

* ``docs/foo.md`` / ``../examples/x.toml`` — the file must exist, resolved
  against the *linking* file's directory.
* ``file.md#fragment`` — the file must exist *and* contain a heading whose
  GitHub-style anchor slug matches ``fragment``.
* ``#fragment`` — checked against the current file's own headings.

Also validates that every ``examples/jobs/*.toml`` parses as a
:class:`repro.api.JobSpec` — a spec file the runner rejects is doc rot
exactly like a dead link, just harder to spot in review.

External schemes (``http://``, ``https://``, ``mailto:``) are skipped —
this is an offline, deterministic check.  Exit status is the number of
problems (0 = clean), so CI can run it directly:

    python tools/check_docs_links.py

Used by ``tests/test_docs_links.py`` and the CI ``docs`` step.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline markdown links and images: [text](target) — tolerates one level of
# nested brackets in the text (e.g. badges), stops the target at ')' or space.
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub's markdown heading → anchor id transformation."""
    text = re.sub(r"[*_`]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(md_path: Path) -> set[str]:
    body = FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    slugs: dict[str, int] = {}
    out = set()
    for match in HEADING_RE.finditer(body):
        slug = _slugify(match.group(1))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def iter_markdown_files(repo: Path = REPO) -> list[Path]:
    files = [repo / "README.md"]
    files.extend(sorted((repo / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(md_path: Path, repo: Path = REPO) -> list[str]:
    """Return human-readable problems for every broken link in *md_path*."""
    body = FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    problems = []
    rel = md_path.relative_to(repo)
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            dest = md_path
        else:
            dest = (md_path.parent / path_part).resolve()
            if not dest.exists():
                problems.append(f"{rel}: broken link -> {target}")
                continue
            if not dest.is_relative_to(repo):
                problems.append(f"{rel}: link escapes the repo -> {target}")
                continue
        if fragment and dest.suffix == ".md" and fragment not in _anchors(dest):
            problems.append(f"{rel}: missing anchor -> {target}")
    return problems


def check_example_jobs(repo: Path = REPO) -> list[str]:
    """Every ``examples/jobs/*.toml`` must parse as a JobSpec."""
    jobs_dir = repo / "examples" / "jobs"
    if not jobs_dir.is_dir():
        return []
    src = repo / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.api import JobSpec, SpecError

    problems = []
    for job in sorted(jobs_dir.glob("*.toml")):
        rel = job.relative_to(repo)
        try:
            JobSpec.from_file(job)
        except SpecError as exc:
            problems.append(f"{rel}: invalid job spec -> {exc}")
        except Exception as exc:  # unparsable TOML etc.
            problems.append(f"{rel}: does not load -> {type(exc).__name__}: {exc}")
    return problems


def main() -> int:
    problems = []
    for md_file in iter_markdown_files():
        problems.extend(check_file(md_file))
    problems.extend(check_example_jobs())
    for line in problems:
        print(line, file=sys.stderr)
    if not problems:
        jobs = len(list((REPO / "examples" / "jobs").glob("*.toml")))
        print(
            f"docs links OK ({len(iter_markdown_files())} files, "
            f"{jobs} example jobs checked)"
        )
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
