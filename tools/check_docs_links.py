#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/.

Scans markdown files for inline links/images ``[text](target)`` and checks
every relative target against the working tree:

* ``docs/foo.md`` / ``../examples/x.toml`` — the file must exist, resolved
  against the *linking* file's directory.
* ``file.md#fragment`` — the file must exist *and* contain a heading whose
  GitHub-style anchor slug matches ``fragment``.
* ``#fragment`` — checked against the current file's own headings.

External schemes (``http://``, ``https://``, ``mailto:``) are skipped —
this is an offline, deterministic check.  Exit status is the number of
broken links (0 = clean), so CI can run it directly:

    python tools/check_docs_links.py

Used by ``tests/test_docs_links.py`` and the CI ``docs`` step.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline markdown links and images: [text](target) — tolerates one level of
# nested brackets in the text (e.g. badges), stops the target at ')' or space.
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub's markdown heading → anchor id transformation."""
    text = re.sub(r"[*_`]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(md_path: Path) -> set[str]:
    body = FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    slugs: dict[str, int] = {}
    out = set()
    for match in HEADING_RE.finditer(body):
        slug = _slugify(match.group(1))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def iter_markdown_files(repo: Path = REPO) -> list[Path]:
    files = [repo / "README.md"]
    files.extend(sorted((repo / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(md_path: Path, repo: Path = REPO) -> list[str]:
    """Return human-readable problems for every broken link in *md_path*."""
    body = FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    problems = []
    rel = md_path.relative_to(repo)
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            dest = md_path
        else:
            dest = (md_path.parent / path_part).resolve()
            if not dest.exists():
                problems.append(f"{rel}: broken link -> {target}")
                continue
            if not dest.is_relative_to(repo):
                problems.append(f"{rel}: link escapes the repo -> {target}")
                continue
        if fragment and dest.suffix == ".md" and fragment not in _anchors(dest):
            problems.append(f"{rel}: missing anchor -> {target}")
    return problems


def main() -> int:
    problems = []
    for md_file in iter_markdown_files():
        problems.extend(check_file(md_file))
    for line in problems:
        print(line, file=sys.stderr)
    if not problems:
        print(f"docs links OK ({len(iter_markdown_files())} files checked)")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
