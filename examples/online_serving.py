"""Online serving: churn, migration budgets, and the cost of staleness.

The paper's production argument (Section 5) is that a shard map must be
*maintained*, not recomputed: the social graph drifts, traffic keeps
arriving, and every migrated record costs real I/O.  This example runs the
serving loop — sample Zipf traffic, replay it against the sharded KV store,
drift the workload, repair the partition within a migration budget,
re-replay — at three budgets, showing the staleness-vs-migration dial.

Run:  python examples/online_serving.py
"""

from __future__ import annotations

from repro.hypergraph import darwini_bipartite
from repro.sharding import LatencyModel
from repro.workloads import ServingConfig, ServingSimulator

NUM_SERVERS = 16


def main() -> None:
    graph = darwini_bipartite(3000, avg_degree=25, clustering=0.4, seed=5)
    print(f"workload: {graph}\n")
    model = LatencyModel(base_ms=1.0, sigma=1.0, size_ms_per_record=0.02)

    for budget in (0.02, 0.10, 0.50):
        config = ServingConfig(
            num_servers=NUM_SERVERS,
            rounds=3,
            queries_per_round=1500,
            churn_fraction=0.08,
            migration_budget=budget,
            repair_iterations=8,
            seed=11,
        )
        outcome = ServingSimulator(graph, config, latency_model=model).run()
        print(f"migration budget {100 * budget:.0f}% per round:")
        print(f"  {'round':>5s} {'churn %':>8s} {'stale fanout':>13s} {'fanout':>7s} {'mean lat':>9s}")
        for report in outcome.rounds:
            print(
                f"  {report.round_index:5d} {100 * report.churn:8.1f} "
                f"{report.stale_fanout:13.2f} {report.fanout:7.2f} "
                f"{report.latency_ms:8.2f}t"
            )
        print(f"  total migrated: {outcome.total_migrated()} of {graph.num_data} records\n")

    print("A tight budget keeps migrations near zero but lets fanout decay with")
    print("churn; a loose one re-earns the fresh-partition fanout every round at")
    print("the price of resharding traffic. The paper's production deployments")
    print("sit in between (Section 5, requirement (i)).")


if __name__ == "__main__":
    main()
