"""Distributed SHP on a Giraph-like cluster (Section 3.2).

Runs the real 4-superstep protocol — data vertices announce bucket deltas,
queries maintain and scatter neighbor data, the master matches gain
histograms and broadcasts move probabilities — on a 4-worker cluster with
full message/byte/memory metering, then prints the per-phase communication
profile and the modeled wall-clock.

The cluster substrate is a pluggable *backend*:

* ``sim`` (default) — workers simulated sequentially in-process; instant
  startup, ideal for protocol studies and modeled cluster minutes.
* ``mp`` — one OS process per worker; the immutable bipartite CSR arrays
  are published once via ``multiprocessing.shared_memory`` and message
  batches flow through per-superstep channels with a master barrier.  Real
  parallel wall-clock; pick at most one worker per physical core.

Both produce bit-identical assignments for the same seed — this example
runs both and checks.

Run:  python examples/distributed_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro import SHPConfig
from repro.core import balanced_random_assignment
from repro.distributed import ClusterSpec, CostModel
from repro.distributed_shp import DistributedSHP
from repro.hypergraph import community_bipartite
from repro.objectives import average_fanout, imbalance


def main() -> None:
    graph = community_bipartite(
        num_queries=1500, num_data=2000, num_edges=14000,
        num_communities=24, mixing=0.2, seed=5,
    )
    print(f"input: {graph}")

    k = 16
    config = SHPConfig(k=k, seed=7, iterations_per_bisection=8, swap_mode="bernoulli")
    cluster = ClusterSpec(num_workers=4)
    print(f"running distributed SHP-2 (k={k}) on {cluster.num_workers} workers ...")
    run = DistributedSHP(config, cluster=cluster, mode="2").run(graph)

    print("re-running on the multiprocess backend (one OS process per worker) ...")
    mp_run = DistributedSHP(config, cluster=cluster, mode="2", backend="mp").run(graph)
    same = bool(np.array_equal(run.assignment, mp_run.assignment))
    print(f"backends agree bit-for-bit: {same} "
          f"(sim wall {run.metrics.wall_seconds:.1f}s, "
          f"mp wall {mp_run.metrics.wall_seconds:.1f}s)")

    rng = np.random.default_rng(0)
    random_fanout = average_fanout(
        graph, balanced_random_assignment(graph.num_data, k, rng), k
    )
    fanout = average_fanout(graph, run.assignment, k)
    print(f"\nfanout: random {random_fanout:.2f} -> SHP {fanout:.2f} "
          f"(imbalance {imbalance(run.assignment, k):.3f})")
    print(f"cycles: {run.cycles}, supersteps: {run.supersteps}, "
          f"halted by master: {run.halted_by_master}")

    print("\nper-phase communication profile:")
    for phase, stats in run.metrics.by_phase().items():
        print(f"  {phase:20s} messages={int(stats['messages']):>9d} "
              f"bytes={int(stats['bytes']):>11d}")

    cost = CostModel()
    print(f"\npeak worker memory: {run.metrics.peak_worker_memory() / 1e6:.1f} MB")
    print(f"modeled cluster time: {run.metrics.modeled_seconds(cost):.1f} s "
          f"(in-process wall: {run.metrics.wall_seconds:.1f} s)")
    print("\nNote: superstep 2 ('neighbor data') dominates traffic, bounded by")
    print("fanout x |E| per iteration, exactly as Section 3.3 predicts.")


if __name__ == "__main__":
    main()
