"""Quickstart: partition a hypergraph and measure fanout.

Builds the paper's Figure 1 example (three queries over six data records),
partitions it into two buckets with SHP, and prints the quality metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BipartiteGraph, evaluate_partition, shp_2
from repro.objectives import average_fanout

def main() -> None:
    # The storage-sharding instance from Figure 1: three multi-get queries
    # over six data records (0-based ids).
    queries = [
        [0, 1, 5],      # query 1 fetches records {1, 2, 6} in paper numbering
        [0, 1, 2, 3],   # query 2
        [3, 4, 5],      # query 3
    ]
    graph = BipartiteGraph.from_hyperedges(queries, num_data=6, name="figure1")
    print(f"input: {graph}")

    # Tiny symmetric instances can oscillate under simultaneous swaps, so we
    # damp move probabilities (real graphs never need this; see Figure 2).
    result = shp_2(graph, k=2, seed=42, move_damping=0.5)
    print(f"assignment: {result.assignment.tolist()}")
    print(f"bucket sizes: {result.bucket_sizes().tolist()}")

    quality = evaluate_partition(graph, result.assignment, k=2)
    print(f"average fanout: {quality.fanout:.3f}  (random ~ {1.75:.2f}, best possible 5/3)")
    print(f"full metrics: {quality.row()}")

    # The paper's example solution V1={1,2,3}, V2={4,5,6} achieves 5/3.
    reference = [0, 0, 0, 1, 1, 1]
    print(f"paper's reference split scores: "
          f"{average_fanout(graph, reference, 2):.3f}")


if __name__ == "__main__":
    main()
