"""Quickstart: partition a hypergraph through the job-spec API.

Builds the paper's Figure 1 example (three queries over six data records),
describes the run as a declarative :class:`repro.api.JobSpec`, executes it
with the shared :func:`repro.api.run` runner, and prints the quality
metrics.  The same spec could be written to TOML and executed with
``repro run job.toml`` — one surface for scripts, CLI, and CI.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BipartiteGraph
from repro.api import AlgorithmSpec, JobSpec, run
from repro.objectives import average_fanout


def main() -> None:
    # The storage-sharding instance from Figure 1: three multi-get queries
    # over six data records (0-based ids).
    queries = [
        [0, 1, 5],      # query 1 fetches records {1, 2, 6} in paper numbering
        [0, 1, 2, 3],   # query 2
        [3, 4, 5],      # query 3
    ]
    graph = BipartiteGraph.from_hyperedges(queries, num_data=6, name="figure1")
    print(f"input: {graph}")

    # Tiny symmetric instances can oscillate under simultaneous swaps, so we
    # damp move probabilities (real graphs never need this; see Figure 2).
    spec = JobSpec(
        seed=42,
        algorithm=AlgorithmSpec(name="shp-2", k=2, options={"move_damping": 0.5}),
    )
    report = run(spec, graph=graph)
    assignment = report.assignment
    print(f"assignment: {assignment.tolist()}")
    print(f"bucket sizes: {[int((assignment == b).sum()) for b in range(2)]}")

    quality = report.quality
    print(f"average fanout: {quality.fanout:.3f}  (random ~ {1.75:.2f}, best possible 5/3)")
    print(f"full metrics: {quality.row()}")

    # The paper's example solution V1={1,2,3}, V2={4,5,6} achieves 5/3.
    reference = [0, 0, 0, 1, 1, 1]
    print(f"paper's reference split scores: "
          f"{average_fanout(graph, reference, 2):.3f}")


if __name__ == "__main__":
    main()
