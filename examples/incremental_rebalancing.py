"""Incremental repartitioning after graph growth (Section 5, req. (i)).

A production shard map cannot be rebuilt from scratch every night — moving
a record is expensive.  This example evolves a partitioned workload (new
queries arrive), then repairs the partition with a warm start and a move
penalty, showing the churn/quality dial.

Run:  python examples/incremental_rebalancing.py
"""

from __future__ import annotations

import numpy as np

from repro import SHPConfig, incremental_update, shp_2
from repro.hypergraph import BipartiteGraph, community_bipartite
from repro.objectives import average_fanout

K = 16


def evolve(graph: BipartiteGraph, seed: int) -> BipartiteGraph:
    """Overlay a batch of new cross-community queries (workload drift)."""
    overlay = community_bipartite(
        num_queries=graph.num_queries // 10,
        num_data=graph.num_data,
        num_edges=graph.num_edges // 10,
        mixing=0.5,
        seed=seed,
    )
    q = np.concatenate([graph.q_of_edge, overlay.q_of_edge + graph.num_queries])
    d = np.concatenate([graph.q_indices, overlay.q_indices])
    return BipartiteGraph.from_edges(
        q, d, num_queries=graph.num_queries + overlay.num_queries,
        num_data=graph.num_data, dedupe=False, name="evolved",
    )


def main() -> None:
    base = community_bipartite(4000, 6000, 40000, num_communities=64, mixing=0.2, seed=17)
    print(f"day 0 workload: {base}")
    previous = shp_2(base, K, seed=1).assignment
    print(f"day 0 fanout: {average_fanout(base, previous, K):.3f}")

    evolved = evolve(base, seed=23)
    stale = average_fanout(evolved, previous, K)
    print(f"\nday 1 workload: {evolved}")
    print(f"stale partition on day-1 traffic: fanout {stale:.3f}")

    print(f"\n{'penalty':>8s} {'churn %':>8s} {'fanout':>8s}   (records moved vs quality)")
    for penalty in (0.0, 0.05, 0.1, 0.3):
        outcome = incremental_update(
            evolved, previous,
            SHPConfig(k=K, seed=2, max_iterations=15, move_penalty=penalty),
        )
        fanout = average_fanout(evolved, outcome.result.assignment, K)
        print(f"{penalty:8.2f} {100 * outcome.churn:8.1f} {fanout:8.3f}")

    scratch = shp_2(evolved, K, seed=3)
    from repro.core import churn as churn_fn

    print(
        f"{'scratch':>8s} {100 * churn_fn(previous, scratch.assignment):8.1f} "
        f"{average_fanout(evolved, scratch.assignment, K):8.3f}"
    )
    print("\nA small move penalty recovers most of the quality at a fraction")
    print("of the migration cost; re-partitioning from scratch relabels nearly")
    print("every record (bucket ids are arbitrary) and is rarely worth it.")


if __name__ == "__main__":
    main()
