"""Storage sharding: the paper's motivating application (Section 4.2.1).

Scenario: a social network's user records live on 40 storage servers;
rendering a profile page multi-gets the user's friends' records.  We shard
the records three ways — random, hash, and SHP — replay a Zipf-skewed
traffic sample against the sharded key-value store, and compare fanout,
latency, and storage-tier CPU.

Run:  python examples/storage_sharding.py
"""

from __future__ import annotations

from repro import shp_2
from repro.baselines import hash_partitioner, random_partitioner
from repro.hypergraph import darwini_bipartite
from repro.sharding import LatencyModel, replay_traffic
from repro.workloads import sample_queries

NUM_SERVERS = 40
NUM_USERS = 8000


def main() -> None:
    print(f"generating a Darwini-like friendship workload for {NUM_USERS} users ...")
    graph = darwini_bipartite(NUM_USERS, avg_degree=40, clustering=0.4, seed=1)
    print(f"  {graph}")

    trace = sample_queries(graph, 3000, skew=0.8, seed=2)
    latency = LatencyModel(base_ms=1.0, sigma=1.0, size_ms_per_record=0.02)

    shardings = {
        "random": random_partitioner(graph, NUM_SERVERS, seed=3).assignment,
        "hash": hash_partitioner(graph, NUM_SERVERS).assignment,
        "SHP-2": shp_2(graph, NUM_SERVERS, seed=3).assignment,
    }

    print(f"\n{'sharding':>8s} {'fanout':>8s} {'mean lat':>9s} {'p99 lat':>8s} {'CPU':>8s}")
    baseline_latency = None
    for name, assignment in shardings.items():
        replay = replay_traffic(graph, assignment, NUM_SERVERS, trace, latency, seed=4)
        if baseline_latency is None:
            baseline_latency = replay.mean_latency()
        print(
            f"{name:>8s} {replay.mean_fanout():8.1f} "
            f"{replay.mean_latency():8.2f}t {replay.latency_percentile(99):7.2f}t "
            f"{replay.cpu_proxy():8.0f}"
        )

    shp_replay = replay_traffic(graph, shardings["SHP-2"], NUM_SERVERS, trace, latency, seed=4)
    speedup = baseline_latency / shp_replay.mean_latency()
    print(
        f"\nSHP sharding answers the same traffic {speedup:.1f}x faster on average\n"
        "(the paper reports ~2x from fanout 40 -> 10, and >50% CPU reduction\n"
        "after deploying to a production graph database)."
    )


if __name__ == "__main__":
    main()
