"""Compare every partitioner in the registry on one dataset (mini Table 2).

Runs SHP (both variants) against the baseline families — random, hash,
label propagation, the multi-level tools' stand-ins, spectral — on the
email-Enron stand-in and prints a quality/runtime table.

Run:  python examples/compare_partitioners.py [k]
"""

from __future__ import annotations

import sys
import time

from repro.baselines import get_partitioner, partitioner_names
from repro.bench import format_table
from repro.hypergraph import load_dataset
from repro.objectives import evaluate_partition


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    graph = load_dataset("email-Enron", scale=0.15, seed=11)
    print(f"input: {graph}  (k = {k})\n")

    rows = []
    for name in partitioner_names():
        start = time.perf_counter()
        result = get_partitioner(name)(graph, k=k, epsilon=0.05, seed=13)
        elapsed = time.perf_counter() - start
        quality = evaluate_partition(graph, result.assignment, k)
        rows.append(
            {
                "partitioner": name,
                "fanout": round(quality.fanout, 3),
                "p-fanout(0.5)": round(quality.pfanout_05, 3),
                "cut %": round(100 * quality.hyperedge_cut, 1),
                "imbalance": round(quality.imbalance, 4),
                "sec": round(elapsed, 2),
            }
        )
    rows.sort(key=lambda row: row["fanout"])
    print(format_table(rows, title=f"email-Enron stand-in, k={k}, ε=0.05"))
    print("Expected shape (paper Table 2): SHP and the multilevel family are")
    print("close, with no consistent winner; random/hash trail far behind.")


if __name__ == "__main__":
    main()
