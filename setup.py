"""Setup shim for environments without the `wheel` package.

PEP 660 editable installs require setuptools >= 70 or the `wheel` package;
this offline environment has neither, so `pip install -e .` falls back to
the legacy path via this file (`pip install -e . --no-build-isolation
--no-use-pep517` also works explicitly).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
